// Failpoint registry tests plus the fault-injection resilience suite.
//
// Tests prefixed `FailpointResilience` are re-run by CI with
// GOGREEN_FAILPOINTS armed over the IO/spill seams (see ci.yml): they must
// hold under ANY injected fault sequence — every run either completes with
// the exact result or fails cleanly, and never leaks spill temp files.

#include <gtest/gtest.h>

#include <dirent.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/compressed_db.h"
#include "core/compressor.h"
#include "core/disk_recycle.h"
#include "data/dat_io.h"
#include "fpm/miner.h"
#include "fpm/pattern_set.h"
#include "tests/test_util.h"
#include "util/env.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace gogreen {
namespace {

using core::CompressedDb;
using core::CompressionStrategy;
using core::MatcherKind;
using failpoint::ScopedFailpoints;
using fpm::PatternSet;
using fpm::TransactionDb;
using testutil::RandomDb;

// --- Registry behavior --------------------------------------------------

TEST(FailpointTest, DisarmedSitesAreFree) {
  ScopedFailpoints off("");
  EXPECT_FALSE(failpoint::Enabled());
  EXPECT_TRUE(failpoint::MaybeFail("spill.write").ok());
  EXPECT_EQ(failpoint::CurrentSpec(), "");
}

TEST(FailpointTest, ArmedSiteInjectsItsAction) {
  ScopedFailpoints fp("spill.write:ioerror");
  EXPECT_TRUE(failpoint::Enabled());
  const Status st = failpoint::MaybeFail("spill.write");
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  // Unarmed sites are unaffected.
  EXPECT_TRUE(failpoint::MaybeFail("spill.read").ok());
}

TEST(FailpointTest, KnownSitesAreSortedAndQueryable) {
  const auto sites = failpoint::KnownSites();
  ASSERT_FALSE(sites.empty());
  for (size_t i = 0; i + 1 < sites.size(); ++i) {
    EXPECT_LT(sites[i], sites[i + 1]) << "registry must stay sorted";
  }
  for (std::string_view site : sites) {
    EXPECT_TRUE(failpoint::IsKnownSite(site)) << site;
  }
  EXPECT_TRUE(failpoint::IsKnownSite("spill.write"));
  EXPECT_FALSE(failpoint::IsKnownSite("no.such.site"));
  EXPECT_FALSE(failpoint::IsKnownSite(""));
}

TEST(FailpointTest, UnknownSiteStillArms) {
  // Arming a site that is not compiled into the binary warns (so typos in
  // GOGREEN_FAILPOINTS are visible) but still arms: tests probe synthetic
  // sites directly through MaybeFail.
  ScopedFailpoints fp("synthetic.site:ioerror");
  EXPECT_FALSE(failpoint::IsKnownSite("synthetic.site"));
  EXPECT_EQ(failpoint::MaybeFail("synthetic.site").code(),
            StatusCode::kIOError);
}

TEST(FailpointTest, OomActionInjectsResourceExhausted) {
  ScopedFailpoints fp("alloc.charge:oom");
  EXPECT_EQ(failpoint::MaybeFail("alloc.charge").code(),
            StatusCode::kResourceExhausted);
}

TEST(FailpointTest, ProbabilityEndpoints) {
  {
    ScopedFailpoints never("spill.write:ioerror@0.0");
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(failpoint::MaybeFail("spill.write").ok());
    }
  }
  {
    ScopedFailpoints always("spill.write:ioerror@1.0");
    const uint64_t before = failpoint::HitCount("spill.write");
    for (int i = 0; i < 100; ++i) {
      EXPECT_FALSE(failpoint::MaybeFail("spill.write").ok());
    }
    EXPECT_EQ(failpoint::HitCount("spill.write"), before + 100);
  }
}

TEST(FailpointTest, FractionalProbabilityFiresSometimes) {
  ScopedFailpoints fp("spill.write:ioerror@0.5");
  int failures = 0;
  for (int i = 0; i < 200; ++i) {
    if (!failpoint::MaybeFail("spill.write").ok()) ++failures;
  }
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 200);
}

TEST(FailpointTest, InvalidEntriesAreSkippedNotFatal) {
  ScopedFailpoints fp("garbage,:,x:badaction,spill.write:ioerror");
  EXPECT_EQ(failpoint::MaybeFail("spill.write").code(),
            StatusCode::kIOError);
  EXPECT_TRUE(failpoint::MaybeFail("x").ok());
}

TEST(FailpointTest, ScopedRestoresPreviousSpec) {
  ScopedFailpoints outer("spill.read:ioerror");
  {
    ScopedFailpoints inner("dat_io.open:ioerror");
    EXPECT_TRUE(failpoint::MaybeFail("spill.read").ok());
    EXPECT_FALSE(failpoint::MaybeFail("dat_io.open").ok());
  }
  EXPECT_EQ(failpoint::CurrentSpec(), "spill.read:ioerror");
  EXPECT_FALSE(failpoint::MaybeFail("spill.read").ok());
}

TEST(FailpointTest, DatIoInjectionSurfacesAsIoError) {
  const std::string path =
      TempDir() + "/fp_dat_" + std::to_string(::getpid()) + ".dat";
  {
    std::ofstream out(path);
    out << "1 2 3\n";
  }
  {
    ScopedFailpoints fp("dat_io.open:ioerror");
    auto loaded = data::ReadDatFile(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
  }
  EXPECT_TRUE(data::ReadDatFile(path).ok());
  std::remove(path.c_str());
}

// --- Resilience suite (CI re-runs these under GOGREEN_FAILPOINTS) -------

size_t EntriesUnder(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  size_t n = 0;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") ++n;
  }
  ::closedir(d);
  return n;
}

struct SpillFixture {
  TransactionDb db;
  CompressedDb cdb;
  PatternSet expected;
};

SpillFixture MakeSpillFixture() {
  SpillFixture f;
  f.db = RandomDb(21, 500, 50, 7.0);
  auto miner = fpm::CreateMiner(fpm::MinerKind::kFpGrowth);
  auto fp_old = miner->Mine(f.db, 40);
  EXPECT_TRUE(fp_old.ok());
  auto cdb = core::CompressDatabase(
      f.db, fp_old.value(), {CompressionStrategy::kMcp, MatcherKind::kAuto});
  EXPECT_TRUE(cdb.ok());
  f.cdb = std::move(cdb).value();
  auto expected = miner->Mine(f.db, 15);
  EXPECT_TRUE(expected.ok());
  f.expected = std::move(expected).value();
  return f;
}

TEST(FailpointResilienceTest, CertainSpillWriteFailureIsCleanAndLeakFree) {
  SpillFixture f = MakeSpillFixture();
  auto scratch = ScopedTempDir::Create(TempDir(), "fp_resilience_");
  ASSERT_TRUE(scratch.ok());

  Status failed;
  {
    ScopedFailpoints fp("spill.write:ioerror");
    auto result = core::MineRecycleHMMemoryLimited(
        f.cdb, 15, size_t{2} << 10, scratch->path());
    // Every write attempt fails, so retries cannot save the run.
    ASSERT_FALSE(result.ok());
    failed = result.status();
    // The bounded retry actually retried before giving up. (Arm/restore
    // resets hit counts, so this must be read inside the scope.)
    EXPECT_GE(failpoint::HitCount("spill.write"), 3u);
  }
  EXPECT_EQ(failed.code(), StatusCode::kIOError);
  // RAII cleanup: the run-private spill directory is gone, nothing leaks
  // into the parent scratch directory.
  EXPECT_EQ(EntriesUnder(scratch->path()), 0u);
}

TEST(FailpointResilienceTest, FlakySpillIoCompletesExactlyOrFailsCleanly) {
  SpillFixture f = MakeSpillFixture();
  auto scratch = ScopedTempDir::Create(TempDir(), "fp_resilience_");
  ASSERT_TRUE(scratch.ok());

  // A spill run issues hundreds of IO calls, so per-call fault rates
  // compound: at 5% the per-call kill probability after 3 attempts is
  // 0.05^3, which retries almost always absorb — while still injecting
  // dozens of faults per run. Either way the contract holds: exact result
  // or clean error, never a leak.
  bool completed_once = false;
  uint64_t injected = 0;
  for (int round = 0; round < 4; ++round) {
    SCOPED_TRACE(round);
    ScopedFailpoints fp("spill.write:ioerror@0.05,spill.read:ioerror@0.05");
    auto result = core::MineRecycleHMMemoryLimited(
        f.cdb, 15, size_t{2} << 10, scratch->path());
    injected += failpoint::HitCount("spill.write") +
                failpoint::HitCount("spill.read");
    if (result.ok()) {
      completed_once = true;
      PatternSet got = std::move(result).value();
      EXPECT_TRUE(PatternSet::Equal(&f.expected, &got));
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kIOError);
    }
    EXPECT_EQ(EntriesUnder(scratch->path()), 0u);
  }
  // At least one run must have survived via retries that actually absorbed
  // injected faults; deterministic because the failpoint PRNG is
  // fixed-seeded.
  EXPECT_TRUE(completed_once);
  EXPECT_GT(injected, 0u);
}

TEST(FailpointResilienceTest, SpillPathUnderAmbientFaultsNeverLeaks) {
  // Unlike the tests above this one does NOT arm its own spec: CI runs it
  // with GOGREEN_FAILPOINTS exported, exercising whatever seam the matrix
  // picked. Unarmed runs double as a plain correctness check.
  SpillFixture f = MakeSpillFixture();
  auto scratch = ScopedTempDir::Create(TempDir(), "fp_resilience_");
  ASSERT_TRUE(scratch.ok());
  auto result = core::MineRecycleHMMemoryLimited(f.cdb, 15, size_t{2} << 10,
                                                 scratch->path());
  if (result.ok()) {
    PatternSet got = std::move(result).value();
    EXPECT_TRUE(PatternSet::Equal(&f.expected, &got));
  }
  EXPECT_EQ(EntriesUnder(scratch->path()), 0u);
}

TEST(FailpointResilienceTest, InMemoryMiningIgnoresIoFaults) {
  // Seams the run never touches must not affect it: an in-memory mine under
  // armed spill faults is bit-identical to the unarmed run.
  const TransactionDb db = RandomDb(22, 300, 40, 6.0);
  auto miner = fpm::CreateMiner(fpm::MinerKind::kHMine);
  auto baseline = miner->Mine(db, 5);
  ASSERT_TRUE(baseline.ok());
  auto armed = miner->Mine(db, 5);
  ASSERT_TRUE(armed.ok());
  PatternSet a = std::move(baseline).value();
  PatternSet b = std::move(armed).value();
  EXPECT_TRUE(PatternSet::Equal(&a, &b));
}

}  // namespace
}  // namespace gogreen
