// Differential oracle for the parallel mining engine: every miner, at every
// thread count in {1, 2, 4, 8}, must produce a pattern set bit-identical to
// its own single-thread run (same patterns, same supports, same order) and
// canonically equal to the sequential Apriori oracle — including through the
// full compress -> recycle pipeline at a relaxed support threshold. Work
// counters must also be exact at any thread count.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "fpm/miner.h"
#include "fpm/pattern_set.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"

namespace gogreen {
namespace {

using core::CompressedDb;
using core::CompressionStrategy;
using core::RecycleAlgo;
using fpm::MinerKind;
using fpm::MiningStats;
using fpm::PatternSet;
using fpm::TransactionDb;
using testutil::RandomDb;
using testutil::RandomDenseDb;

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

constexpr MinerKind kParallelMiners[] = {
    MinerKind::kHMine, MinerKind::kFpGrowth, MinerKind::kTreeProjection};

constexpr RecycleAlgo kParallelRecyclers[] = {
    RecycleAlgo::kHMine, RecycleAlgo::kFpGrowth,
    RecycleAlgo::kTreeProjection};

/// Restores the global pool size on scope exit so tests cannot leak a
/// thread-count override into each other.
class ScopedThreads {
 public:
  explicit ScopedThreads(size_t threads) { ThreadPool::SetGlobalThreads(threads); }
  ~ScopedThreads() { ThreadPool::SetGlobalThreads(0); }
};

/// Bit-identical comparison: same patterns with same supports in the same
/// emission order (PatternSet::Equal would hide ordering differences).
void ExpectIdentical(const PatternSet& expected, const PatternSet& got,
                     const char* what) {
  ASSERT_EQ(expected.size(), got.size()) << what;
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(expected[i], got[i])
        << what << " diverges at position " << i << ": expected "
        << expected[i].ToString() << " got " << got[i].ToString();
  }
}

void ExpectStatsEqual(const MiningStats& a, const MiningStats& b,
                      const char* what) {
  EXPECT_EQ(a.patterns_emitted, b.patterns_emitted) << what;
  EXPECT_EQ(a.projections_built, b.projections_built) << what;
  EXPECT_EQ(a.items_scanned, b.items_scanned) << what;
}

PatternSet MineDirect(MinerKind kind, const TransactionDb& db, uint64_t minsup,
                      MiningStats* stats = nullptr) {
  auto miner = fpm::CreateMiner(kind);
  auto result = miner->Mine(db, minsup);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (stats != nullptr) *stats = miner->stats();
  return std::move(result).value();
}

PatternSet MineOracle(const TransactionDb& db, uint64_t minsup) {
  return MineDirect(MinerKind::kApriori, db, minsup);
}

struct DiffParam {
  const char* name;
  uint64_t seed;
  bool dense;
  uint64_t xi_old;  // Mining threshold for the recycled pattern set.
  uint64_t xi_new;  // Relaxed threshold for re-mining (xi_new <= xi_old).
};

class ParallelDifferentialTest : public ::testing::TestWithParam<DiffParam> {
 protected:
  TransactionDb BuildDb() const {
    const DiffParam& p = GetParam();
    return p.dense ? RandomDenseDb(p.seed, 300, 8, 4)
                   : RandomDb(p.seed, 400, 60, 8.0);
  }
};

TEST_P(ParallelDifferentialTest, PlainMinersMatchSequentialAndOracle) {
  const TransactionDb db = BuildDb();
  const uint64_t minsup = GetParam().xi_new;
  PatternSet oracle = MineOracle(db, minsup);

  for (MinerKind kind : kParallelMiners) {
    SCOPED_TRACE(fpm::MinerKindName(kind));
    MiningStats seq_stats;
    PatternSet sequential;
    {
      ScopedThreads one(1);
      sequential = MineDirect(kind, db, minsup, &seq_stats);
    }
    PatternSet canon = sequential;
    EXPECT_TRUE(PatternSet::Equal(&oracle, &canon))
        << "sequential run disagrees with Apriori oracle";

    for (size_t threads : kThreadCounts) {
      SCOPED_TRACE(testing::Message() << threads << " threads");
      ScopedThreads scoped(threads);
      MiningStats par_stats;
      const PatternSet parallel = MineDirect(kind, db, minsup, &par_stats);
      ExpectIdentical(sequential, parallel, "plain miner output");
      ExpectStatsEqual(seq_stats, par_stats, "plain miner stats");
    }
  }
}

TEST_P(ParallelDifferentialTest, CompressRecycleMatchesSequentialAndOracle) {
  const DiffParam& p = GetParam();
  const TransactionDb db = BuildDb();

  // The recycling pipeline of the paper: mine at xi_old, compress the
  // database around those patterns, re-mine at the relaxed xi_new.
  const PatternSet fp_old = MineDirect(MinerKind::kFpGrowth, db, p.xi_old);
  auto compressed = core::CompressDatabase(
      db, fp_old, {CompressionStrategy::kMcp, core::MatcherKind::kAuto});
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  const CompressedDb& cdb = compressed.value();

  PatternSet oracle = MineOracle(db, p.xi_new);

  for (RecycleAlgo algo : kParallelRecyclers) {
    SCOPED_TRACE(core::RecycleAlgoName(algo));
    MiningStats seq_stats;
    PatternSet sequential;
    {
      ScopedThreads one(1);
      auto miner = core::CreateCompressedMiner(algo);
      auto result = miner->MineCompressed(cdb, p.xi_new);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      sequential = std::move(result).value();
      seq_stats = miner->stats();
    }
    PatternSet canon = sequential;
    EXPECT_TRUE(PatternSet::Equal(&oracle, &canon))
        << "sequential recycling disagrees with Apriori oracle";

    for (size_t threads : kThreadCounts) {
      SCOPED_TRACE(testing::Message() << threads << " threads");
      ScopedThreads scoped(threads);
      auto miner = core::CreateCompressedMiner(algo);
      auto result = miner->MineCompressed(cdb, p.xi_new);
      ASSERT_TRUE(result.ok()) << result.status().ToString();
      ExpectIdentical(sequential, result.value(), "recycled output");
      ExpectStatsEqual(seq_stats, miner->stats(), "recycled stats");
    }
  }
}

TEST_P(ParallelDifferentialTest, ParallelCompressionIsBitIdentical) {
  const DiffParam& p = GetParam();
  const TransactionDb db = BuildDb();
  const PatternSet fp_old = MineDirect(MinerKind::kFpGrowth, db, p.xi_old);

  core::CompressionStats seq_stats;
  Result<CompressedDb> sequential = [&] {
    ScopedThreads one(1);
    return core::CompressDatabase(
        db, fp_old, {CompressionStrategy::kMcp, core::MatcherKind::kAuto},
        &seq_stats);
  }();
  ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();

  for (size_t threads : kThreadCounts) {
    SCOPED_TRACE(testing::Message() << threads << " threads");
    ScopedThreads scoped(threads);
    core::CompressionStats par_stats;
    auto parallel = core::CompressDatabase(
        db, fp_old, {CompressionStrategy::kMcp, core::MatcherKind::kAuto},
        &par_stats);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_EQ(par_stats.groups, seq_stats.groups);
    EXPECT_EQ(par_stats.covered_tuples, seq_stats.covered_tuples);
    EXPECT_EQ(par_stats.uncovered_tuples, seq_stats.uncovered_tuples);
    EXPECT_EQ(par_stats.stored_items, seq_stats.stored_items);
    // The compressed databases must mine identically too.
    for (uint64_t minsup : {p.xi_new, p.xi_old}) {
      auto a = core::CreateCompressedMiner(RecycleAlgo::kHMine)
                   ->MineCompressed(sequential.value(), minsup);
      auto b = core::CreateCompressedMiner(RecycleAlgo::kHMine)
                   ->MineCompressed(parallel.value(), minsup);
      ASSERT_TRUE(a.ok() && b.ok());
      ExpectIdentical(a.value(), b.value(), "mining of compressed db");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Quest, ParallelDifferentialTest,
    ::testing::Values(DiffParam{"quest_a", 11, false, 40, 20},
                      DiffParam{"quest_b", 29, false, 30, 12},
                      DiffParam{"quest_c", 63, false, 24, 16}),
    // `tpi`, not `info`: the INSTANTIATE macro's generated function already
    // has a parameter named `info`, which the lambda would shadow.
    [](const auto& tpi) { return tpi.param.name; });

INSTANTIATE_TEST_SUITE_P(
    Dense, ParallelDifferentialTest,
    ::testing::Values(DiffParam{"dense_a", 7, true, 120, 60},
                      DiffParam{"dense_b", 41, true, 90, 45}),
    [](const auto& tpi) { return tpi.param.name; });

}  // namespace
}  // namespace gogreen
