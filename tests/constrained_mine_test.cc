// Tests for constraint pushdown mining: exactness vs complete-set +
// post-filter, the pruning effect, and the compressed variant.

#include "core/constrained_mine.h"

#include <gtest/gtest.h>

#include "core/compressor.h"
#include "fpm/miner.h"
#include "tests/test_util.h"

namespace gogreen::core {
namespace {

using fpm::ItemId;
using fpm::PatternSet;
using fpm::TransactionDb;
using testutil::RandomDb;

/// Ground truth: complete mine then filter.
PatternSet Expected(const TransactionDb& db, const ConstraintSet& cs) {
  auto fp = fpm::CreateMiner(fpm::MinerKind::kFpGrowth)
                ->Mine(db, cs.min_support());
  EXPECT_TRUE(fp.ok());
  return cs.Filter(*fp);
}

TEST(ConstrainedMineTest, MaxLengthPushdownExact) {
  const TransactionDb db = RandomDb(91, 400, 40, 6.0);
  ConstraintSet cs(12);
  cs.Add(MakeMaxLength(2));
  PatternSet expected = Expected(db, cs);
  auto got = MineConstrained(db, cs);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  PatternSet gs = std::move(got).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &gs));
}

TEST(ConstrainedMineTest, PushdownPrunesSearchSpace) {
  const TransactionDb db = RandomDb(92, 500, 40, 7.0);
  ConstraintSet unconstrained(10);
  ConstraintSet constrained(10);
  constrained.Add(MakeMaxLength(1));

  fpm::MiningStats free_stats;
  fpm::MiningStats pruned_stats;
  ASSERT_TRUE(MineConstrained(db, unconstrained, &free_stats).ok());
  ASSERT_TRUE(MineConstrained(db, constrained, &pruned_stats).ok());
  // With |X| <= 1, only the first level's projections are ever built and
  // nothing is scanned below it.
  EXPECT_LT(pruned_stats.projections_built,
            free_stats.projections_built / 2);
  EXPECT_LT(pruned_stats.items_scanned, free_stats.items_scanned);
}

TEST(ConstrainedMineTest, MaxSumPushdownExact) {
  const TransactionDb db = RandomDb(93, 300, 30, 5.0);
  std::vector<double> prices(30);
  for (size_t i = 0; i < prices.size(); ++i) {
    prices[i] = static_cast<double>(i);
  }
  ConstraintSet cs(10);
  cs.Add(MakeMaxSum(prices, 25.0));
  PatternSet expected = Expected(db, cs);
  auto got = MineConstrained(db, cs);
  ASSERT_TRUE(got.ok());
  PatternSet gs = std::move(got).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &gs));
}

TEST(ConstrainedMineTest, MonotoneConstraintsPostFiltered) {
  // Monotone constraints cannot prune prefixes (a failing prefix may have
  // passing extensions); correctness must still hold via the post-filter.
  const TransactionDb db = RandomDb(94, 300, 30, 5.0);
  ConstraintSet cs(10);
  cs.Add(MakeMinLength(2));
  PatternSet expected = Expected(db, cs);
  auto got = MineConstrained(db, cs);
  ASSERT_TRUE(got.ok());
  PatternSet gs = std::move(got).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &gs));
  for (const auto& p : gs) EXPECT_GE(p.size(), 2u);
}

TEST(ConstrainedMineTest, MixedCategories) {
  const TransactionDb db = RandomDb(95, 400, 35, 6.0);
  std::vector<double> values(35);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i % 7);
  }
  ConstraintSet cs(12);
  cs.Add(MakeMaxLength(3));             // Anti-monotone: pushed down.
  cs.Add(MakeMinLength(2));             // Monotone: post-filter.
  cs.Add(MakeMinAvg(values, 2.0));      // Convertible: post-filter.
  cs.Add(MakeRequiresAny({0, 1, 2, 3, 4, 5}));  // Succinct: post-filter.
  PatternSet expected = Expected(db, cs);
  auto got = MineConstrained(db, cs);
  ASSERT_TRUE(got.ok());
  PatternSet gs = std::move(got).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &gs));
}

TEST(ConstrainedMineTest, CompressedVariantExact) {
  const TransactionDb db = RandomDb(96, 400, 40, 6.0);
  auto fp_old = fpm::CreateMiner(fpm::MinerKind::kHMine)->Mine(db, 40);
  ASSERT_TRUE(fp_old.ok());
  auto cdb = CompressDatabase(
      db, *fp_old, {CompressionStrategy::kMcp, MatcherKind::kAuto});
  ASSERT_TRUE(cdb.ok());

  ConstraintSet cs(10);
  cs.Add(MakeMaxLength(3));
  PatternSet expected = Expected(db, cs);
  auto got = MineConstrainedCompressed(*cdb, cs);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  PatternSet gs = std::move(got).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &gs));
}

TEST(ConstrainedMineTest, ItemSubsetPushdown) {
  const TransactionDb db = RandomDb(97, 300, 30, 5.0);
  ConstraintSet cs(8);
  // Succinct AND anti-monotone in our taxonomy? MakeItemSubset is
  // classified succinct, so it is post-filtered; result must match anyway.
  cs.Add(MakeItemSubset({0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  PatternSet expected = Expected(db, cs);
  auto got = MineConstrained(db, cs);
  ASSERT_TRUE(got.ok());
  PatternSet gs = std::move(got).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &gs));
}

TEST(ConstrainedMineTest, ZeroSupportRejected) {
  const TransactionDb db = RandomDb(98, 50, 10, 4.0);
  ConstraintSet cs(0);
  EXPECT_FALSE(MineConstrained(db, cs).ok());
  CompressedDb cdb;
  EXPECT_FALSE(MineConstrainedCompressed(cdb, cs).ok());
}

TEST(ConstrainedMineTest, NoConstraintsEqualsPlainMining) {
  const TransactionDb db = RandomDb(99, 300, 30, 5.0);
  ConstraintSet cs(12);
  auto got = MineConstrained(db, cs);
  ASSERT_TRUE(got.ok());
  auto plain = fpm::CreateMiner(fpm::MinerKind::kHMine)->Mine(db, 12);
  ASSERT_TRUE(plain.ok());
  PatternSet a = std::move(got).value();
  PatternSet b = std::move(plain).value();
  EXPECT_TRUE(PatternSet::Equal(&a, &b));
}

}  // namespace
}  // namespace gogreen::core
