// MUST COMPILE cleanly under -Wthread-safety -Werror=thread-safety-analysis:
// the guarded field is copied out under the lock instead of leaking a
// reference past it.
//
// Bad twin: bad_return_guarded_ref.cc

#include <string>

#include "util/thread_annotations.h"

namespace {

class Box {
 public:
  std::string Value() {
    gogreen::MutexLock lock(mu_);
    return value_;
  }

 private:
  gogreen::Mutex mu_;
  std::string value_ GUARDED_BY(mu_);
};

}  // namespace

int main() {
  Box b;
  (void)b.Value();
  return 0;
}
