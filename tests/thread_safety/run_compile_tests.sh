#!/usr/bin/env bash
# Negative compile tests for the lock-discipline proofs (DESIGN.md §15).
#
# Every bad_*.cc in this directory must FAIL to compile under clang's
# thread-safety analysis — with a diagnostic from the thread-safety
# group, not some unrelated error — and every good_*.cc (its fixed twin)
# must compile cleanly. This pins the analysis itself: if a toolchain
# update or an edit to util/thread_annotations.h silently stopped the
# attributes from expanding, the bad snippets would start compiling and
# this test would fail.
#
# Requires clang++ (the analysis is clang-only). On hosts without one the
# test exits 77, which ctest maps to SKIPPED via SKIP_RETURN_CODE.
#
# Usage: run_compile_tests.sh <repo_src_dir>   (the directory added with
# -I so the snippets can include "util/thread_annotations.h")

set -u

SRC_DIR="${1:?usage: run_compile_tests.sh <repo_src_dir>}"
HERE="$(cd "$(dirname "$0")" && pwd)"

# Resolve a clang++. GOGREEN_CLANGXX overrides; otherwise take clang++ or
# the newest versioned binary on PATH.
CLANGXX="${GOGREEN_CLANGXX:-}"
if [[ -z "${CLANGXX}" ]]; then
  for cand in clang++ clang++-20 clang++-19 clang++-18 clang++-17 \
              clang++-16 clang++-15 clang++-14; do
    if command -v "${cand}" >/dev/null 2>&1; then
      CLANGXX="${cand}"
      break
    fi
  done
fi
if [[ -z "${CLANGXX}" ]] || ! command -v "${CLANGXX}" >/dev/null 2>&1; then
  echo "SKIP: no clang++ on PATH (thread-safety analysis is clang-only)"
  exit 77
fi
echo "using ${CLANGXX}: $("${CLANGXX}" --version | head -n 1)"

FLAGS=(-std=c++20 -fsyntax-only -I "${SRC_DIR}"
       -Wthread-safety -Wthread-safety-beta -Wthread-safety-reference
       -Werror)

failures=0
checked=0

check_bad() {
  local file="$1" out
  checked=$((checked + 1))
  if out=$("${CLANGXX}" "${FLAGS[@]}" "${file}" 2>&1); then
    echo "FAIL: ${file##*/} compiled but must be rejected"
    failures=$((failures + 1))
  elif ! grep -q "thread-safety" <<<"${out}"; then
    echo "FAIL: ${file##*/} was rejected, but not by the thread-safety" \
         "analysis:"
    echo "${out}"
    failures=$((failures + 1))
  else
    echo "ok:   ${file##*/} rejected by the analysis"
  fi
}

check_good() {
  local file="$1" out
  checked=$((checked + 1))
  if out=$("${CLANGXX}" "${FLAGS[@]}" "${file}" 2>&1); then
    echo "ok:   ${file##*/} compiles cleanly"
  else
    echo "FAIL: ${file##*/} must compile cleanly but was rejected:"
    echo "${out}"
    failures=$((failures + 1))
  fi
}

for f in "${HERE}"/bad_*.cc; do check_bad "$f"; done
for f in "${HERE}"/good_*.cc; do check_good "$f"; done

if [[ ${checked} -lt 6 ]]; then
  echo "FAIL: expected at least 6 snippets, found ${checked}"
  failures=$((failures + 1))
fi

if [[ ${failures} -ne 0 ]]; then
  echo "${failures} compile-test failure(s)"
  exit 1
fi
echo "all ${checked} thread-safety compile tests passed"
