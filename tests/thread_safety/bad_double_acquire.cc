// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety-analysis:
// acquires the same (non-recursive) mutex twice in one scope —
// self-deadlock at runtime, "acquiring mutex ... that is already held"
// at compile time.
//
// Good twin: good_scoped_acquire.cc

#include "util/thread_annotations.h"

namespace {

class State {
 public:
  void Update() {
    gogreen::MutexLock outer(mu_);
    gogreen::MutexLock inner(mu_);  // BAD: mu_ is already held.
    ++n_;
  }

 private:
  gogreen::Mutex mu_;
  int n_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  State s;
  s.Update();
  return 0;
}
