// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety-analysis:
// writes a GUARDED_BY field without holding its mutex.
//
// Good twin: good_guarded_with_lock.cc

#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() { ++n_; }  // BAD: mu_ not held.

 private:
  gogreen::Mutex mu_;
  int n_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return 0;
}
