// MUST COMPILE cleanly under -Wthread-safety -Werror=thread-safety-analysis:
// the locked helper states its contract with REQUIRES, so the caller holds
// the mutex exactly once and the helper acquires nothing.
//
// Bad twin: bad_double_acquire.cc

#include "util/thread_annotations.h"

namespace {

class State {
 public:
  void Update() {
    gogreen::MutexLock lock(mu_);
    UpdateLocked();
  }

 private:
  void UpdateLocked() REQUIRES(mu_) { ++n_; }

  gogreen::Mutex mu_;
  int n_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  State s;
  s.Update();
  return 0;
}
