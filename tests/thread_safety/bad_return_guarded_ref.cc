// MUST NOT COMPILE under -Wthread-safety -Werror=thread-safety-analysis:
// returns a mutable reference to a GUARDED_BY field — the caller would
// mutate it after the lock is gone.
//
// Good twin: good_return_guarded_copy.cc

#include <string>

#include "util/thread_annotations.h"

namespace {

class Box {
 public:
  std::string& Value() {
    gogreen::MutexLock lock(mu_);
    return value_;  // BAD: reference escapes the critical section.
  }

 private:
  gogreen::Mutex mu_;
  std::string value_ GUARDED_BY(mu_);
};

}  // namespace

int main() {
  Box b;
  b.Value() += "x";
  return 0;
}
