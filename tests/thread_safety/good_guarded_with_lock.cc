// MUST COMPILE cleanly under -Wthread-safety -Werror=thread-safety-analysis:
// the guarded field is only touched under MutexLock.
//
// Bad twin: bad_guarded_no_lock.cc

#include "util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Bump() {
    gogreen::MutexLock lock(mu_);
    ++n_;
  }

 private:
  gogreen::Mutex mu_;
  int n_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return 0;
}
