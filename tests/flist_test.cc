// Tests for the F-list and the rank-encoded database view.

#include "fpm/flist.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace gogreen::fpm {
namespace {

TEST(FListTest, PaperExampleDefinition31) {
  // Definition 3.1 example: with xi_new = 2 the F-list of Table 1 is
  // <d:2, f:3, g:3, a:3, e:4, c:4>.
  const TransactionDb db = testutil::PaperExampleDb();
  const FList flist = FList::Build(db, 2);
  ASSERT_EQ(flist.size(), 6u);
  constexpr ItemId a = 0, c = 2, d = 3, e = 4, f = 5, g = 6;
  EXPECT_EQ(flist.item(0), d);
  EXPECT_EQ(flist.support(0), 2u);
  // f, g, a all have support 3; ties broken by item id ascending: a < f < g.
  EXPECT_EQ(flist.item(1), a);
  EXPECT_EQ(flist.item(2), f);
  EXPECT_EQ(flist.item(3), g);
  EXPECT_EQ(flist.support(3), 3u);
  // c, e both have support 4; c < e.
  EXPECT_EQ(flist.item(4), c);
  EXPECT_EQ(flist.item(5), e);
}

TEST(FListTest, RanksRoundTrip) {
  const TransactionDb db = testutil::PaperExampleDb();
  const FList flist = FList::Build(db, 2);
  for (Rank r = 0; r < flist.size(); ++r) {
    EXPECT_EQ(flist.rank(flist.item(r)), r);
  }
  EXPECT_EQ(flist.rank(1), kNoRank);  // b has support 1.
  EXPECT_EQ(flist.rank(7), kNoRank);  // h.
  EXPECT_EQ(flist.rank(1000), kNoRank);  // Out of universe.
}

TEST(FListTest, IsFrequent) {
  const TransactionDb db = testutil::PaperExampleDb();
  const FList flist = FList::Build(db, 3);
  EXPECT_TRUE(flist.IsFrequent(2));   // c:4
  EXPECT_FALSE(flist.IsFrequent(3));  // d:2
}

TEST(FListTest, SupportsAreAscending) {
  const TransactionDb db = testutil::RandomDb(3, 300, 40, 6.0);
  const FList flist = FList::Build(db, 5);
  for (Rank r = 1; r < flist.size(); ++r) {
    EXPECT_LE(flist.support(r - 1), flist.support(r));
  }
}

TEST(FListTest, EncodeDropsInfrequentAndSortsByRank) {
  const TransactionDb db = testutil::PaperExampleDb();
  const FList flist = FList::Build(db, 2);
  // Tuple 100 = {a,c,d,e,f,g}; all frequent. Encoded ranks ascending.
  const std::vector<Rank> enc = flist.EncodeTransaction(db.Transaction(0));
  ASSERT_EQ(enc.size(), 6u);
  for (size_t i = 1; i < enc.size(); ++i) EXPECT_LT(enc[i - 1], enc[i]);
  // Tuple 500 = {a,e,h}: h infrequent -> 2 ranks.
  EXPECT_EQ(flist.EncodeTransaction(db.Transaction(4)).size(), 2u);
}

TEST(FListTest, DecodeRanksInverseOfEncode) {
  const TransactionDb db = testutil::PaperExampleDb();
  const FList flist = FList::Build(db, 2);
  const std::vector<Rank> enc = flist.EncodeTransaction(db.Transaction(1));
  std::vector<ItemId> items = flist.DecodeRanks(enc);
  std::sort(items.begin(), items.end());
  // Tuple 200 = {b,c,d,f,g}, b infrequent.
  EXPECT_EQ(items, (std::vector<ItemId>{2, 3, 5, 6}));
}

TEST(FListTest, MinSupportZeroTreatedAsOne) {
  const TransactionDb db = testutil::PaperExampleDb();
  const FList flist = FList::Build(db, 0);
  EXPECT_EQ(flist.size(), 9u);  // Every occurring item.
}

TEST(FListTest, EmptyWhenNothingFrequent) {
  const TransactionDb db = testutil::PaperExampleDb();
  EXPECT_TRUE(FList::Build(db, 10).empty());
}

TEST(RankedDbTest, PreservesTransactionCountAndStableTids) {
  const TransactionDb db = testutil::PaperExampleDb();
  const FList flist = FList::Build(db, 3);
  const RankedDb ranked = RankedDb::Build(db, flist);
  EXPECT_EQ(ranked.NumTransactions(), db.NumTransactions());
  // Tuple 500 = {a,e,h} -> {a,e} at minsup 3.
  EXPECT_EQ(ranked.Transaction(4).size(), 2u);
}

TEST(RankedDbTest, TotalItemsOnlyCountsFrequentOccurrences) {
  const TransactionDb db = testutil::PaperExampleDb();
  const FList flist = FList::Build(db, 3);
  const RankedDb ranked = RankedDb::Build(db, flist);
  // Frequent items: a(3) c(4) e(4) f(3) g(3). Occurrences:
  // t0: a,c,e,f,g =5; t1: c,f,g =3; t2: c,e,f,g =4; t3: a,c,e =3; t4: a,e =2.
  EXPECT_EQ(ranked.TotalItems(), 17u);
}

}  // namespace
}  // namespace gogreen::fpm
