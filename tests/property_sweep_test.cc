// Parameterized property sweeps: broad randomized configurations asserting
// the library's central invariants —
//   (1) the five plain miners agree with each other,
//   (2) every recycling pipeline (strategy x matcher x algorithm) equals
//       direct mining,
//   (3) memory-limited mining equals unlimited mining for any budget,
//   (4) compression is lossless and threshold-independent.

#include <gtest/gtest.h>

#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "core/disk_recycle.h"
#include "fpm/miner.h"
#include "fpm/partition.h"
#include "tests/test_util.h"
#include "util/env.h"

namespace gogreen {
namespace {

using core::CompressDatabase;
using core::CompressionStrategy;
using core::MatcherKind;
using core::RecycleAlgo;
using fpm::PatternSet;
using fpm::TransactionDb;

struct SweepParam {
  uint64_t seed;
  bool dense;
  uint64_t xi_old;
  uint64_t xi_new;
};

std::string ParamName(const testing::TestParamInfo<SweepParam>& info) {
  return (info.param.dense ? std::string("dense") : std::string("sparse")) +
         "_s" + std::to_string(info.param.seed) + "_o" +
         std::to_string(info.param.xi_old) + "_n" +
         std::to_string(info.param.xi_new);
}

class PipelineSweepTest : public testing::TestWithParam<SweepParam> {
 protected:
  TransactionDb MakeDbForParam() const {
    const SweepParam& p = GetParam();
    return p.dense ? testutil::RandomDenseDb(p.seed, 300, 9, 3)
                   : testutil::RandomDb(p.seed, 350, 45, 6.5);
  }
};

TEST_P(PipelineSweepTest, FullMatrixAgreesWithDirect) {
  const SweepParam& p = GetParam();
  const TransactionDb db = MakeDbForParam();

  auto direct = fpm::CreateMiner(fpm::MinerKind::kEclat)->Mine(db, p.xi_new);
  ASSERT_TRUE(direct.ok());
  PatternSet expected = std::move(direct).value();

  auto fp_old =
      fpm::CreateMiner(fpm::MinerKind::kFpGrowth)->Mine(db, p.xi_old);
  ASSERT_TRUE(fp_old.ok());

  for (CompressionStrategy strategy :
       {CompressionStrategy::kMcp, CompressionStrategy::kMlp}) {
    for (MatcherKind matcher :
         {MatcherKind::kLinear, MatcherKind::kInvertedIndex}) {
      auto cdb = CompressDatabase(db, *fp_old, {strategy, matcher});
      ASSERT_TRUE(cdb.ok());
      for (RecycleAlgo algo :
           {RecycleAlgo::kNaive, RecycleAlgo::kHMine, RecycleAlgo::kFpGrowth,
            RecycleAlgo::kTreeProjection}) {
        SCOPED_TRACE(testing::Message()
                     << core::CompressionStrategyName(strategy) << "/"
                     << core::MatcherKindName(matcher) << "/"
                     << RecycleAlgoName(algo));
        auto got = core::CreateCompressedMiner(algo)->MineCompressed(
            *cdb, p.xi_new);
        ASSERT_TRUE(got.ok());
        PatternSet gs = std::move(got).value();
        EXPECT_TRUE(PatternSet::Equal(&expected, &gs))
            << "missing: " << PatternSet::Difference(&expected, &gs).size()
            << " extra: " << PatternSet::Difference(&gs, &expected).size();
      }
    }
  }
}

TEST_P(PipelineSweepTest, MemoryLimitedMatchesUnlimited) {
  const SweepParam& p = GetParam();
  const TransactionDb db = MakeDbForParam();

  auto unlimited =
      fpm::CreateMiner(fpm::MinerKind::kHMine)->Mine(db, p.xi_new);
  ASSERT_TRUE(unlimited.ok());
  PatternSet expected = std::move(unlimited).value();

  // A budget derived from the seed: sometimes tiny, sometimes ample.
  const size_t budget = (p.seed % 3 == 0)   ? size_t{1} << 10
                        : (p.seed % 3 == 1) ? size_t{64} << 10
                                            : SIZE_MAX;
  auto limited = fpm::MineHMineMemoryLimited(db, p.xi_new, budget, TempDir());
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  PatternSet got = std::move(limited).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got));

  auto fp_old =
      fpm::CreateMiner(fpm::MinerKind::kFpGrowth)->Mine(db, p.xi_old);
  ASSERT_TRUE(fp_old.ok());
  auto cdb = CompressDatabase(
      db, *fp_old, {CompressionStrategy::kMcp, MatcherKind::kAuto});
  ASSERT_TRUE(cdb.ok());
  auto rec_limited =
      core::MineRecycleHMMemoryLimited(*cdb, p.xi_new, budget, TempDir());
  ASSERT_TRUE(rec_limited.ok()) << rec_limited.status().ToString();
  PatternSet got2 = std::move(rec_limited).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &got2));
}

INSTANTIATE_TEST_SUITE_P(
    Sparse, PipelineSweepTest,
    testing::Values(SweepParam{301, false, 50, 18},
                    SweepParam{302, false, 35, 10},
                    SweepParam{303, false, 80, 25},
                    SweepParam{304, false, 40, 6},
                    SweepParam{305, false, 25, 12}),
    ParamName);

INSTANTIATE_TEST_SUITE_P(
    Dense, PipelineSweepTest,
    testing::Values(SweepParam{311, true, 250, 160},
                    SweepParam{312, true, 220, 140},
                    SweepParam{313, true, 270, 120}),
    ParamName);

class LosslessSweepTest : public testing::TestWithParam<uint64_t> {};

TEST_P(LosslessSweepTest, CompressDecompressRoundTrip) {
  const uint64_t seed = GetParam();
  const TransactionDb db = seed % 2 == 0
                               ? testutil::RandomDb(seed, 250, 35, 5.5)
                               : testutil::RandomDenseDb(seed, 200, 8, 4);
  auto fp = fpm::CreateMiner(fpm::MinerKind::kEclat)
                ->Mine(db, seed % 2 == 0 ? 20 : 120);
  ASSERT_TRUE(fp.ok());
  for (CompressionStrategy strategy :
       {CompressionStrategy::kMcp, CompressionStrategy::kMlp}) {
    auto cdb = CompressDatabase(db, *fp, {strategy, MatcherKind::kAuto});
    ASSERT_TRUE(cdb.ok());
    ASSERT_EQ(cdb->NumTuples(), db.NumTransactions());
    const TransactionDb round = cdb->Decompress();
    for (uint64_t m = 0; m < cdb->NumTuples(); ++m) {
      const auto got = round.Transaction(static_cast<fpm::Tid>(m));
      const auto want = db.Transaction(cdb->MemberTid(m));
      ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(),
                             want.end()));
    }
    // Item supports survive compression (the F-list shortcut).
    EXPECT_EQ(cdb->CountItemSupports(db.ItemUniverseSize()),
              db.CountItemSupports());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LosslessSweepTest,
                         testing::Range<uint64_t>(400, 412));

}  // namespace
}  // namespace gogreen
