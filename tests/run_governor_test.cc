// Run-governor tests: deadlines, memory budgets, and cooperative
// cancellation must degrade every governed miner to a *partial but exact*
// result — the emitted set, filtered to the reported frontier support, is
// bit-for-bit the complete frequent set at that support (checked against
// the sequential Apriori oracle). Also covers the compressor's graceful
// degradation and the run.* metrics flush.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/compressed_db.h"
#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "fpm/miner.h"
#include "fpm/pattern_set.h"
#include "obs/metrics.h"
#include "tests/test_util.h"
#include "util/run_context.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace gogreen {
namespace {

using core::CompressedDb;
using core::CompressionStrategy;
using core::CompressorOptions;
using core::MatcherKind;
using core::RecycleAlgo;
using fpm::MineResult;
using fpm::MinerKind;
using fpm::PatternSet;
using fpm::TransactionDb;
using testutil::RandomDb;

constexpr MinerKind kGovernedMiners[] = {
    MinerKind::kHMine, MinerKind::kFpGrowth, MinerKind::kTreeProjection};

constexpr RecycleAlgo kGovernedRecyclers[] = {
    RecycleAlgo::kHMine, RecycleAlgo::kFpGrowth,
    RecycleAlgo::kTreeProjection};

class ScopedThreads {
 public:
  explicit ScopedThreads(size_t n) { ThreadPool::SetGlobalThreads(n); }
  ~ScopedThreads() { ThreadPool::SetGlobalThreads(0); }
};

PatternSet Oracle(const TransactionDb& db, uint64_t minsup) {
  auto miner = fpm::CreateMiner(MinerKind::kApriori);
  auto result = miner->Mine(db, minsup);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Unified-API spelling of a governed run: one MineRequest carrying the
/// governor (the old MineGoverned wrapper is gone).
Result<MineResult> Governed(fpm::FrequentPatternMiner& miner,
                            const TransactionDb& db, uint64_t minsup,
                            RunContext* ctx) {
  fpm::MineRequest request = fpm::MineRequest::At(minsup);
  request.run_context = ctx;
  return miner.Mine(db, request);
}

Result<MineResult> Governed(core::CompressedMiner& miner,
                            const CompressedDb& cdb, uint64_t minsup,
                            RunContext* ctx) {
  fpm::MineRequest request = fpm::MineRequest::At(minsup);
  request.run_context = ctx;
  return miner.Mine(cdb, request);
}

/// The governed partial-result contract: patterns == the complete frequent
/// set at outcome.frontier_support.
void ExpectExactAtFrontier(const TransactionDb& db, MineResult outcome,
                           const char* what) {
  ASSERT_TRUE(outcome.partial) << what;
  ASSERT_FALSE(outcome.stop_status.ok()) << what;
  PatternSet expected = Oracle(db, outcome.frontier_support);
  EXPECT_TRUE(PatternSet::Equal(&expected, &outcome.patterns))
      << what << ": partial set is not the exact frequent set at frontier "
      << outcome.frontier_support << " (" << expected.size() << " vs "
      << outcome.patterns.size() << " patterns)";
}

// --- RunContext unit behavior -------------------------------------------

TEST(RunContextTest, StartsClean) {
  RunContext ctx;
  EXPECT_FALSE(ctx.ShouldStop());
  EXPECT_FALSE(ctx.stopped());
  EXPECT_FALSE(ctx.incomplete());
  EXPECT_TRUE(ctx.StopStatus().ok());
}

TEST(RunContextTest, CancelIsStickyAndMapsToStatus) {
  RunContext ctx;
  ctx.RequestCancel();
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_TRUE(ctx.ShouldStop());  // Sticky.
  EXPECT_EQ(ctx.stop_reason(), StopReason::kCancelled);
  EXPECT_EQ(ctx.StopStatus().code(), StatusCode::kCancelled);
}

TEST(RunContextTest, ExpiredDeadlineTripsOnPoll) {
  RunContext ctx;
  ctx.SetDeadlineAfterMillis(0);
  EXPECT_TRUE(ctx.PollNow());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kDeadlineExceeded);
  EXPECT_EQ(ctx.StopStatus().code(), StatusCode::kDeadlineExceeded);
}

TEST(RunContextTest, BudgetBreachTripsButChargeSucceeds) {
  RunContext ctx;
  ctx.SetMemoryBudget(100);
  ctx.AddBytes(60);
  EXPECT_FALSE(ctx.ShouldStop());
  ctx.AddBytes(60);  // 120 > 100: trips, but the bytes stay accounted.
  EXPECT_TRUE(ctx.ShouldStop());
  EXPECT_EQ(ctx.stop_reason(), StopReason::kMemoryBudgetExceeded);
  EXPECT_EQ(ctx.StopStatus().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(ctx.bytes_in_use(), 120u);
  EXPECT_EQ(ctx.bytes_peak(), 120u);
}

TEST(RunContextTest, FirstReasonWins) {
  RunContext ctx;
  ctx.RequestCancel();
  ctx.SetDeadlineAfterMillis(0);
  ctx.PollNow();
  EXPECT_EQ(ctx.stop_reason(), StopReason::kCancelled);
}

TEST(RunContextTest, MarkIncompleteKeepsLargestFrontier) {
  RunContext ctx;
  ctx.MarkIncomplete(10);
  ctx.MarkIncomplete(7);   // Lower mark must not shrink the frontier.
  ctx.MarkIncomplete(12);
  EXPECT_TRUE(ctx.incomplete());
  EXPECT_EQ(ctx.frontier_support(), 12u);
}

TEST(RunContextTest, ScopedBytesReleasesButKeepsPeak) {
  RunContext ctx;
  {
    ScopedBytes a(&ctx, 1000);
    ScopedBytes b(&ctx, 500);
    EXPECT_EQ(ctx.bytes_in_use(), 1500u);
  }
  EXPECT_EQ(ctx.bytes_in_use(), 0u);
  EXPECT_EQ(ctx.bytes_peak(), 1500u);
  ScopedBytes none(nullptr, 1 << 30);  // Null context: no-op.
}

// --- Governed mining: deterministic stops -------------------------------

TEST(GovernedMineTest, PreCancelledRunIsPartialWithSoundFrontier) {
  const TransactionDb db = RandomDb(7, 300, 50, 8);
  for (MinerKind kind : kGovernedMiners) {
    auto miner = fpm::CreateMiner(kind);
    SCOPED_TRACE(miner->name());
    RunContext ctx;
    ctx.RequestCancel();
    auto outcome = Governed(*miner, db, 3, &ctx);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_TRUE(outcome->partial);
    EXPECT_EQ(outcome->stop_status.code(), StatusCode::kCancelled);
    ExpectExactAtFrontier(db, std::move(outcome).value(), "pre-cancelled");
  }
}

TEST(GovernedMineTest, ExpiredDeadlineIsPartialDeterministically) {
  const TransactionDb db = RandomDb(8, 300, 50, 8);
  for (MinerKind kind : kGovernedMiners) {
    auto miner = fpm::CreateMiner(kind);
    SCOPED_TRACE(miner->name());
    RunContext ctx;
    ctx.SetDeadlineAfterMillis(0);
    auto outcome = Governed(*miner, db, 3, &ctx);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_TRUE(outcome->partial);
    EXPECT_EQ(outcome->stop_status.code(), StatusCode::kDeadlineExceeded);
    ExpectExactAtFrontier(db, std::move(outcome).value(), "deadline-0");
  }
}

TEST(GovernedMineTest, GenerousGovernorLeavesRunComplete) {
  const TransactionDb db = RandomDb(9, 200, 40, 7);
  const uint64_t minsup = 4;
  PatternSet oracle = Oracle(db, minsup);
  for (MinerKind kind : kGovernedMiners) {
    auto miner = fpm::CreateMiner(kind);
    SCOPED_TRACE(miner->name());
    RunContext ctx;  // No deadline, no budget: must not change the result.
    auto outcome = Governed(*miner, db, minsup, &ctx);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_FALSE(outcome->partial);
    EXPECT_TRUE(outcome->stop_status.ok());
    EXPECT_EQ(outcome->frontier_support, minsup);
    EXPECT_TRUE(PatternSet::Equal(&oracle, &outcome->patterns));
    EXPECT_GT(ctx.bytes_peak(), 0u);  // Miners actually charge scratch.
  }
}

// --- Governed mining: mid-run memory budget -----------------------------

/// Probes a miner's cooperative byte peak, then reruns with a budget set to
/// a fraction of it: the run must stop mid-way with an exact-at-frontier
/// partial set.
void BudgetPartialCase(MinerKind kind, const TransactionDb& db,
                       uint64_t minsup) {
  auto miner = fpm::CreateMiner(kind);
  SCOPED_TRACE(miner->name());

  RunContext probe;
  auto full = Governed(*miner, db, minsup, &probe);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_FALSE(full->partial);
  ASSERT_GT(probe.bytes_peak(), 0u);

  RunContext ctx;
  ctx.SetMemoryBudget(std::max<size_t>(1, probe.bytes_peak() / 2));
  auto outcome = Governed(*miner, db, minsup, &ctx);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome->partial);
  EXPECT_EQ(outcome->stop_status.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(outcome->frontier_support, minsup);
  ExpectExactAtFrontier(db, std::move(outcome).value(), "budget");
}

TEST(GovernedMineTest, MemoryBudgetYieldsExactPartialSet) {
  // Single worker keeps the probe/budget byte profiles comparable.
  ScopedThreads single(1);
  const TransactionDb db = RandomDb(11, 500, 60, 9);
  for (MinerKind kind : kGovernedMiners) BudgetPartialCase(kind, db, 3);
}

TEST(GovernedMineTest, MemoryBudgetPartialKeepsFrequentHead) {
  // With descending-frequency subtree order, a mid-run stop must still have
  // completed the most-frequent singletons: the partial set is non-empty.
  ScopedThreads single(1);
  const TransactionDb db = RandomDb(12, 500, 60, 9);
  auto miner = fpm::CreateMiner(MinerKind::kHMine);
  RunContext probe;
  auto full = Governed(*miner, db, 3, &probe);
  ASSERT_TRUE(full.ok());
  ASSERT_GT(probe.bytes_peak(), 0u);

  RunContext ctx;
  ctx.SetMemoryBudget(probe.bytes_peak() - 1);
  auto outcome = Governed(*miner, db, 3, &ctx);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome->partial);
  EXPECT_GT(outcome->patterns.size(), 0u);
  ExpectExactAtFrontier(db, std::move(outcome).value(), "near-peak budget");
}

// --- Governed recycling (compressed-database miners) --------------------

TEST(GovernedRecycleTest, BudgetYieldsExactPartialSetOverCompressedDb) {
  ScopedThreads single(1);
  const TransactionDb db = RandomDb(13, 500, 60, 9);
  const PatternSet fp_old = Oracle(db, 12);
  CompressorOptions copts;
  copts.strategy = CompressionStrategy::kMcp;
  copts.matcher = MatcherKind::kAuto;
  auto cdb = core::CompressDatabase(db, fp_old, copts, nullptr);
  ASSERT_TRUE(cdb.ok()) << cdb.status().ToString();

  for (RecycleAlgo algo : kGovernedRecyclers) {
    auto miner = core::CreateCompressedMiner(algo);
    SCOPED_TRACE(miner->name());

    RunContext probe;
    auto full = Governed(*miner, *cdb, 3, &probe);
    ASSERT_TRUE(full.ok()) << full.status().ToString();
    ASSERT_FALSE(full->partial);
    ASSERT_GT(probe.bytes_peak(), 0u);

    RunContext ctx;
    ctx.SetMemoryBudget(std::max<size_t>(1, probe.bytes_peak() / 2));
    auto outcome = Governed(*miner, *cdb, 3, &ctx);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    ASSERT_TRUE(outcome->partial);
    EXPECT_EQ(outcome->stop_status.code(), StatusCode::kResourceExhausted);
    ExpectExactAtFrontier(db, std::move(outcome).value(), "recycle budget");
  }
}

TEST(GovernedRecycleTest, PreCancelledRecycleIsPartial) {
  const TransactionDb db = RandomDb(14, 200, 40, 7);
  const PatternSet fp_old = Oracle(db, 10);
  CompressorOptions copts;
  auto cdb = core::CompressDatabase(db, fp_old, copts, nullptr);
  ASSERT_TRUE(cdb.ok());
  for (RecycleAlgo algo : kGovernedRecyclers) {
    auto miner = core::CreateCompressedMiner(algo);
    SCOPED_TRACE(miner->name());
    RunContext ctx;
    ctx.RequestCancel();
    auto outcome = Governed(*miner, *cdb, 3, &ctx);
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
    EXPECT_TRUE(outcome->partial);
    EXPECT_EQ(outcome->stop_status.code(), StatusCode::kCancelled);
    ExpectExactAtFrontier(db, std::move(outcome).value(), "recycle cancel");
  }
}

// --- Compressor degradation ---------------------------------------------

TEST(GovernedCompressTest, StoppedCoverLoopStaysLossless) {
  const TransactionDb db = RandomDb(15, 300, 50, 8);
  const PatternSet fp = Oracle(db, 10);

  RunContext ctx;
  ctx.RequestCancel();  // Stop before any tuple is matched.
  CompressorOptions copts;
  copts.run_context = &ctx;
  auto cdb = core::CompressDatabase(db, fp, copts, nullptr);
  ASSERT_TRUE(cdb.ok()) << cdb.status().ToString();

  // Degradation must never mark the run's pattern output incomplete: the
  // result is a valid lossless CompressedDb, just less compressed.
  EXPECT_FALSE(ctx.incomplete());
  const TransactionDb round = cdb->Decompress();
  ASSERT_EQ(round.NumTransactions(), db.NumTransactions());
  for (uint64_t m = 0; m < cdb->NumTuples(); ++m) {
    const fpm::Tid original = cdb->MemberTid(m);
    const auto got = round.Transaction(static_cast<fpm::Tid>(m));
    const auto want = db.Transaction(original);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()));
  }
}

// --- Metrics flush ------------------------------------------------------

TEST(GovernedMineTest, PartialRunFlushesRunMetrics) {
  const auto before = obs::MetricRegistry::Global().Snapshot();
  const TransactionDb db = RandomDb(16, 200, 40, 7);
  auto miner = fpm::CreateMiner(MinerKind::kHMine);
  RunContext ctx;
  ctx.RequestCancel();
  auto outcome = Governed(*miner, db, 3, &ctx);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->partial);
  const auto after = obs::MetricRegistry::Global().Snapshot();
  EXPECT_EQ(after.CounterValue("run.partial"),
            before.CounterValue("run.partial") + 1);
  EXPECT_EQ(after.CounterValue("run.cancelled"),
            before.CounterValue("run.cancelled") + 1);
  EXPECT_EQ(after.CounterValue("run.deadline_exceeded"),
            before.CounterValue("run.deadline_exceeded"));
}

}  // namespace
}  // namespace gogreen
