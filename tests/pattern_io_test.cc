// Tests for pattern-set persistence (binary and text formats), including
// the crash-safety contract: writes publish atomically via a temp file and
// rename, corruption anywhere in a binary file is caught by the checksum
// trailer, and injected write/rename faults leave no temp debris and never
// clobber a previously published file.

#include "fpm/pattern_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "fpm/miner.h"
#include "tests/test_util.h"
#include "util/env.h"
#include "util/failpoint.h"

namespace gogreen::fpm {
namespace {

std::string TempPath(const char* name) {
  return TempDir() + "/" + name + std::to_string(::getpid());
}

PatternSet SamplePatterns() {
  PatternSet fp;
  fp.Add({1, 2, 3}, 10);
  fp.Add({5}, 42);
  fp.Add({2, 9}, 7);
  return fp;
}

TEST(PatternIoTest, BinaryRoundTrip) {
  const std::string path = TempPath("patio_bin_");
  PatternSetHeader header;
  header.min_support = 7;
  header.num_transactions = 100;
  header.source = "unit-test";
  auto written = WritePatternFile(SamplePatterns(), header, path);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_GT(written.value(), 0u);

  auto loaded = ReadPatternFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  PatternSet expected = SamplePatterns();
  EXPECT_TRUE(PatternSet::Equal(&expected, &loaded->first));
  EXPECT_EQ(loaded->second.min_support, 7u);
  EXPECT_EQ(loaded->second.num_transactions, 100u);
  EXPECT_EQ(loaded->second.source, "unit-test");
  std::remove(path.c_str());
}

TEST(PatternIoTest, BinaryRejectsGarbage) {
  const std::string path = TempPath("patio_garbage_");
  {
    std::ofstream out(path, std::ios::binary);
    out << "nope";
  }
  EXPECT_FALSE(ReadPatternFile(path).ok());
  std::remove(path.c_str());
}

TEST(PatternIoTest, BinaryRejectsTruncation) {
  const std::string path = TempPath("patio_trunc_");
  PatternSetHeader header;
  ASSERT_TRUE(WritePatternFile(SamplePatterns(), header, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 5));
  }
  EXPECT_FALSE(ReadPatternFile(path).ok());
  std::remove(path.c_str());
}

TEST(PatternIoTest, TextRoundTrip) {
  const std::string path = TempPath("patio_txt_");
  auto written = WritePatternText(SamplePatterns(), path);
  ASSERT_TRUE(written.ok());
  auto loaded = ReadPatternText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  PatternSet expected = SamplePatterns();
  EXPECT_TRUE(PatternSet::Equal(&expected, &loaded.value()));
  std::remove(path.c_str());
}

TEST(PatternIoTest, TextRejectsMissingSupport) {
  const std::string path = TempPath("patio_badtxt_");
  {
    std::ofstream out(path);
    out << "1 2 3\n";
  }
  EXPECT_FALSE(ReadPatternText(path).ok());
  std::remove(path.c_str());
}

TEST(PatternIoTest, EmptySetRoundTrips) {
  const std::string path = TempPath("patio_empty_");
  ASSERT_TRUE(WritePatternFile(PatternSet(), {}, path).ok());
  auto loaded = ReadPatternFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->first.empty());
  std::remove(path.c_str());
}

TEST(PatternIoTest, ChecksumCatchesSingleBitCorruption) {
  const std::string path = TempPath("patio_bitflip_");
  PatternSetHeader header;
  header.min_support = 7;
  header.source = "bitflip";
  ASSERT_TRUE(WritePatternFile(SamplePatterns(), header, path).ok());

  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  // Flip one bit at every offset in turn: no single-bit corruption anywhere
  // in the file — header, payload, or trailer — may read back as OK.
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    std::string corrupt = bytes;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0x01);
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    }
    EXPECT_FALSE(ReadPatternFile(path).ok())
        << "bit flip at offset " << pos << " went undetected";
  }
  std::remove(path.c_str());
}

TEST(PatternIoTest, WriteLeavesNoTempFileBehind) {
  const std::string path = TempPath("patio_notmp_");
  ASSERT_TRUE(WritePatternFile(SamplePatterns(), {}, path).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST(PatternIoTest, InjectedWriteFaultLeavesNoDebris) {
  const std::string path = TempPath("patio_failwrite_");
  failpoint::ScopedFailpoints fp("pattern_io.write:ioerror");
  EXPECT_FALSE(WritePatternFile(SamplePatterns(), {}, path).ok());
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(PatternIoTest, InjectedRenameFaultPreservesThePublishedFile) {
  const std::string path = TempPath("patio_failrename_");
  // Publish a good file first.
  PatternSetHeader header;
  header.min_support = 7;
  ASSERT_TRUE(WritePatternFile(SamplePatterns(), header, path).ok());

  // A failed re-write must neither clobber it nor leave a temp file.
  {
    failpoint::ScopedFailpoints fp("pattern_io.rename:ioerror");
    PatternSet other;
    other.Add({8, 9}, 3);
    EXPECT_FALSE(WritePatternFile(other, {}, path).ok());
  }
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto loaded = ReadPatternFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  PatternSet expected = SamplePatterns();
  EXPECT_TRUE(PatternSet::Equal(&expected, &loaded->first));
  EXPECT_EQ(loaded->second.min_support, 7u);
  std::remove(path.c_str());
}

TEST(PatternIoTest, TextWriteIsAlsoAtomic) {
  const std::string path = TempPath("patio_txtatomic_");
  ASSERT_TRUE(WritePatternText(SamplePatterns(), path).ok());
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  {
    failpoint::ScopedFailpoints fp("pattern_io.write:ioerror");
    EXPECT_FALSE(WritePatternText(SamplePatterns(), path).ok());
  }
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  auto loaded = ReadPatternText(path);
  EXPECT_TRUE(loaded.ok());
  std::remove(path.c_str());
}

TEST(PatternIoTest, MinedSetRoundTripsExactly) {
  const auto db = testutil::RandomDb(55, 300, 40, 6.0);
  auto fp = CreateMiner(MinerKind::kFpGrowth)->Mine(db, 15);
  ASSERT_TRUE(fp.ok());
  const std::string path = TempPath("patio_mined_");
  PatternSetHeader header{15, db.NumTransactions(), "mined"};
  ASSERT_TRUE(WritePatternFile(*fp, header, path).ok());
  auto loaded = ReadPatternFile(path);
  ASSERT_TRUE(loaded.ok());
  PatternSet expected = std::move(fp).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &loaded->first));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gogreen::fpm
