// Tests for pattern-set persistence (binary and text formats).

#include "fpm/pattern_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "fpm/miner.h"
#include "tests/test_util.h"
#include "util/env.h"

namespace gogreen::fpm {
namespace {

std::string TempPath(const char* name) {
  return TempDir() + "/" + name + std::to_string(::getpid());
}

PatternSet SamplePatterns() {
  PatternSet fp;
  fp.Add({1, 2, 3}, 10);
  fp.Add({5}, 42);
  fp.Add({2, 9}, 7);
  return fp;
}

TEST(PatternIoTest, BinaryRoundTrip) {
  const std::string path = TempPath("patio_bin_");
  PatternSetHeader header;
  header.min_support = 7;
  header.num_transactions = 100;
  header.source = "unit-test";
  auto written = WritePatternFile(SamplePatterns(), header, path);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_GT(written.value(), 0u);

  auto loaded = ReadPatternFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  PatternSet expected = SamplePatterns();
  EXPECT_TRUE(PatternSet::Equal(&expected, &loaded->first));
  EXPECT_EQ(loaded->second.min_support, 7u);
  EXPECT_EQ(loaded->second.num_transactions, 100u);
  EXPECT_EQ(loaded->second.source, "unit-test");
  std::remove(path.c_str());
}

TEST(PatternIoTest, BinaryRejectsGarbage) {
  const std::string path = TempPath("patio_garbage_");
  {
    std::ofstream out(path, std::ios::binary);
    out << "nope";
  }
  EXPECT_FALSE(ReadPatternFile(path).ok());
  std::remove(path.c_str());
}

TEST(PatternIoTest, BinaryRejectsTruncation) {
  const std::string path = TempPath("patio_trunc_");
  PatternSetHeader header;
  ASSERT_TRUE(WritePatternFile(SamplePatterns(), header, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 5));
  }
  EXPECT_FALSE(ReadPatternFile(path).ok());
  std::remove(path.c_str());
}

TEST(PatternIoTest, TextRoundTrip) {
  const std::string path = TempPath("patio_txt_");
  auto written = WritePatternText(SamplePatterns(), path);
  ASSERT_TRUE(written.ok());
  auto loaded = ReadPatternText(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  PatternSet expected = SamplePatterns();
  EXPECT_TRUE(PatternSet::Equal(&expected, &loaded.value()));
  std::remove(path.c_str());
}

TEST(PatternIoTest, TextRejectsMissingSupport) {
  const std::string path = TempPath("patio_badtxt_");
  {
    std::ofstream out(path);
    out << "1 2 3\n";
  }
  EXPECT_FALSE(ReadPatternText(path).ok());
  std::remove(path.c_str());
}

TEST(PatternIoTest, EmptySetRoundTrips) {
  const std::string path = TempPath("patio_empty_");
  ASSERT_TRUE(WritePatternFile(PatternSet(), {}, path).ok());
  auto loaded = ReadPatternFile(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->first.empty());
  std::remove(path.c_str());
}

TEST(PatternIoTest, MinedSetRoundTripsExactly) {
  const auto db = testutil::RandomDb(55, 300, 40, 6.0);
  auto fp = CreateMiner(MinerKind::kFpGrowth)->Mine(db, 15);
  ASSERT_TRUE(fp.ok());
  const std::string path = TempPath("patio_mined_");
  PatternSetHeader header{15, db.NumTransactions(), "mined"};
  ASSERT_TRUE(WritePatternFile(*fp, header, path).ok());
  auto loaded = ReadPatternFile(path);
  ASSERT_TRUE(loaded.ok());
  PatternSet expected = std::move(fp).value();
  EXPECT_TRUE(PatternSet::Equal(&expected, &loaded->first));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gogreen::fpm
