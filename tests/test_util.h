// Shared helpers for the gogreen test suites.

#ifndef GOGREEN_TESTS_TEST_UTIL_H_
#define GOGREEN_TESTS_TEST_UTIL_H_

#include <vector>

#include "fpm/transaction_db.h"
#include "util/random.h"

namespace gogreen::testutil {

/// Builds a database from an explicit list of transactions.
inline fpm::TransactionDb MakeDb(
    const std::vector<std::vector<fpm::ItemId>>& rows) {
  fpm::TransactionDb db;
  for (const auto& row : rows) db.AddTransaction(row);
  return db;
}

/// The 5-transaction example database of Table 1 in the paper, with items
/// a..i encoded as 0..8.
/// 100: a,c,d,e,f,g   200: b,c,d,f,g   300: c,e,f,g   400: a,c,e,i
/// 500: a,e,h
inline fpm::TransactionDb PaperExampleDb() {
  constexpr fpm::ItemId a = 0, b = 1, c = 2, d = 3, e = 4, f = 5, g = 6,
                        h = 7, i = 8;
  return MakeDb({{a, c, d, e, f, g},
                 {b, c, d, f, g},
                 {c, e, f, g},
                 {a, c, e, i},
                 {a, e, h}});
}

/// A random sparse-ish database: `num_transactions` rows over `num_items`
/// items with approximately `avg_len` items each, with a Zipf-like skew so
/// that non-trivial frequent patterns exist.
inline fpm::TransactionDb RandomDb(uint64_t seed, size_t num_transactions,
                                   size_t num_items, double avg_len) {
  Random rng(seed);
  fpm::TransactionDb db;
  for (size_t t = 0; t < num_transactions; ++t) {
    const uint32_t len = 1 + rng.Poisson(avg_len > 1 ? avg_len - 1 : 0.5);
    std::vector<fpm::ItemId> row;
    row.reserve(len);
    for (uint32_t k = 0; k < len; ++k) {
      // Squaring a uniform skews towards low item ids (popular items).
      const double u = rng.NextDouble();
      row.push_back(static_cast<fpm::ItemId>(
          u * u * static_cast<double>(num_items)));
    }
    db.AddTransaction(std::move(row));
  }
  return db;
}

/// A random dense database: every row has one value per attribute, with a
/// heavily skewed value distribution (mimics Connect-4 / Pumsb density).
inline fpm::TransactionDb RandomDenseDb(uint64_t seed,
                                        size_t num_transactions,
                                        size_t num_attrs,
                                        size_t values_per_attr) {
  Random rng(seed);
  fpm::TransactionDb db;
  for (size_t t = 0; t < num_transactions; ++t) {
    std::vector<fpm::ItemId> row;
    row.reserve(num_attrs);
    for (size_t a = 0; a < num_attrs; ++a) {
      // 70% chance of the attribute's dominant value.
      size_t v = rng.Bernoulli(0.7) ? 0 : rng.Uniform(values_per_attr);
      row.push_back(static_cast<fpm::ItemId>(a * values_per_attr + v));
    }
    db.AddTransaction(std::move(row));
  }
  return db;
}

}  // namespace gogreen::testutil

#endif  // GOGREEN_TESTS_TEST_UTIL_H_
