#!/usr/bin/env bash
# End-to-end smoke test for the gogreen CLI. Usage: cli_smoke_test.sh <binary>
set -euo pipefail

BIN="$1"
DIR="$(mktemp -d "${TMPDIR:-/tmp}/gogreen_cli_test.XXXXXX")"
trap 'rm -rf "$DIR"' EXIT

fail() { echo "FAIL: $1" >&2; exit 1; }

# generate
"$BIN" generate --kind quest -n 2000 -o "$DIR/data.dat" \
    --items 200 --patterns 30 --seed 7 | grep -q "generated 2000" \
    || fail "generate"

# stats
"$BIN" stats -i "$DIR/data.dat" | grep -q "transactions: 2000" \
    || fail "stats"

# mine (binary + text outputs)
"$BIN" mine -i "$DIR/data.dat" -s 0.05 -o "$DIR/p.bin" \
    | grep -q "patterns at support" || fail "mine"
"$BIN" mine -i "$DIR/data.dat" -s 0.05 -o "$DIR/p.txt" >/dev/null \
    || fail "mine txt"
[ -s "$DIR/p.bin" ] || fail "pattern file missing"
[ -s "$DIR/p.txt" ] || fail "pattern text missing"

# recycle at a relaxed threshold; both pattern formats must load
"$BIN" recycle -i "$DIR/data.dat" -p "$DIR/p.bin" -s 0.02 -o "$DIR/p2.bin" \
    | grep -q "recycled" || fail "recycle bin"
"$BIN" recycle -i "$DIR/data.dat" -p "$DIR/p.txt" -s 0.02 \
    | grep -q "recycled" || fail "recycle txt"

# recycled result must have at least as many patterns as the seed set
SEED_COUNT=$("$BIN" summary -p "$DIR/p.bin" | grep -oE '^all: *[0-9]+' | grep -oE '[0-9]+')
DEEP_COUNT=$("$BIN" summary -p "$DIR/p2.bin" | grep -oE '^all: *[0-9]+' | grep -oE '[0-9]+')
[ "$DEEP_COUNT" -ge "$SEED_COUNT" ] || fail "relaxation shrank the set"

# compress
"$BIN" compress -i "$DIR/data.dat" -p "$DIR/p.bin" -o "$DIR/data.cdb" \
    --strategy MLP | grep -q "compressed 2000 tuples" || fail "compress"
[ -s "$DIR/data.cdb" ] || fail "cdb missing"

# rules + summary variants
"$BIN" rules -i "$DIR/data.dat" -p "$DIR/p2.bin" -c 0.5 -k 5 \
    | grep -q "rules" || fail "rules"
"$BIN" summary -p "$DIR/p2.bin" --closed --maximal | grep -q "maximal:" \
    || fail "summary"

# observability: --metrics-json and --trace write valid-looking documents
"$BIN" recycle -i "$DIR/data.dat" -p "$DIR/p.bin" -s 0.02 \
    --metrics-json "$DIR/metrics.json" --trace "$DIR/trace.json" \
    >/dev/null 2>&1 || fail "recycle with metrics/trace"
grep -q '"mine.items_scanned"' "$DIR/metrics.json" || fail "metrics counter"
grep -q '"compress.groups_formed"' "$DIR/metrics.json" || fail "metrics compress"
grep -q '"spans"' "$DIR/metrics.json" || fail "metrics spans"
grep -q '"traceEvents"' "$DIR/trace.json" || fail "trace events"

# error handling: each failure class has its sysexits-style exit code
# (0 ok, 64 usage, 65 malformed data, 74 IO error, 75 partial result)
expect_exit() {
  local want="$1"; shift
  local got=0
  "$@" >/dev/null 2>&1 || got=$?
  [ "$got" -eq "$want" ] || fail "expected exit $want, got $got: $*"
}

expect_exit 64 "$BIN"                                   # no subcommand
expect_exit 64 "$BIN" bogus-subcommand
expect_exit 64 "$BIN" mine -s 0.1                       # missing -i
expect_exit 64 "$BIN" mine -i "$DIR/data.dat" -s not_a_number
expect_exit 74 "$BIN" mine -i /nonexistent.dat -s 0.1   # unreadable file
printf '1 banana 3\n' > "$DIR/malformed.dat"
expect_exit 65 "$BIN" mine -i "$DIR/malformed.dat" -s 2 # malformed content
printf '1 99999999999\n' > "$DIR/overflow.dat"
expect_exit 65 "$BIN" stats -i "$DIR/overflow.dat"      # item id overflow

# run governor: an expired deadline yields a partial result (exit 75) that
# names the frontier support and flushes the run.partial metric
GOV_OUT="$DIR/governed.out"
set +e
"$BIN" mine -i "$DIR/data.dat" -s 2 --timeout-ms 0 \
    --metrics-json "$DIR/governed.json" > "$GOV_OUT" 2>/dev/null
GOV_RC=$?
set -e
[ "$GOV_RC" -eq 75 ] || fail "governed mine: expected exit 75, got $GOV_RC"
grep -q "partial result:" "$GOV_OUT" || fail "governed mine: no partial line"
grep -q "frontier support" "$GOV_OUT" || fail "governed mine: no frontier"
grep -q '"run.partial":1' "$DIR/governed.json" \
    || fail "governed mine: run.partial metric missing"

# a generous governor must not change the result or the exit code
"$BIN" mine -i "$DIR/data.dat" -s 0.05 --timeout-ms 60000 --mem-limit-mb 4096 \
    | grep -q "patterns at support" || fail "generous governor"

# malformed numerics are a clean InvalidArgument message, not a crash
if "$BIN" mine -i "$DIR/data.dat" -s not_a_number >/dev/null 2>"$DIR/err"; then
  fail "malformed -s accepted"
fi
grep -q "InvalidArgument" "$DIR/err" || fail "malformed -s: wrong error"

# a negative number is parsed as a value (then rejected), not as a switch
if "$BIN" mine -i "$DIR/data.dat" -s -0.5 >/dev/null 2>"$DIR/err"; then
  fail "negative -s accepted"
fi
grep -q "positive support" "$DIR/err" || fail "negative -s: wrong error"

# session mode: a scripted relax-support sweep must take every route through
# the pattern store — scratch, recycle, exact hit, filter-down — and say so
cat > "$DIR/session.txt" <<'EOF'
# relax-support sweep over one database
mine 0.05
mine 0.02
mine 0.05
mine 0.03
stats
store
EOF
SESS_OUT="$DIR/session.out"
"$BIN" session -i "$DIR/data.dat" --script "$DIR/session.txt" \
    --store-dir "$DIR/store" --metrics-json "$DIR/session.json" \
    > "$SESS_OUT" || fail "session script"
grep -q "route=none" "$SESS_OUT" || fail "session: no scratch route"
grep -q "route=recycle" "$SESS_OUT" || fail "session: no recycle route"
grep -q "route=exact" "$SESS_OUT" || fail "session: no exact hit"
grep -q "route=filter-down" "$SESS_OUT" || fail "session: no filter-down"
grep -q "store: entries=" "$SESS_OUT" || fail "session: no store line"
grep -q "session: 6 commands, 4 mines" "$SESS_OUT" || fail "session summary"
grep -q '"serve.cache_hits":1' "$DIR/session.json" \
    || fail "session: serve.cache_hits metric"
grep -q '"serve.recycled":1' "$DIR/session.json" \
    || fail "session: serve.recycled metric"
ls "$DIR/store"/*.gpat >/dev/null 2>&1 || fail "session: store not persisted"

# a second session over the persisted store answers from cache immediately
printf 'mine 0.05\nmine 0.02\n' | "$BIN" session -i "$DIR/data.dat" \
    --store-dir "$DIR/store" > "$SESS_OUT" || fail "session reload"
grep -q "store: loaded" "$SESS_OUT" || fail "session: no store load line"
ROUTES=$(grep -c "route=exact" "$SESS_OUT") || true
[ "$ROUTES" -eq 2 ] || fail "session reload: expected 2 exact hits, got $ROUTES"

# batch scripts are strict: an unknown command aborts with a usage error
printf 'mine 0.05\nfrobnicate\n' > "$DIR/bad_session.txt"
expect_exit 64 "$BIN" session -i "$DIR/data.dat" --script "$DIR/bad_session.txt"
expect_exit 64 "$BIN" session -i "$DIR/data.dat" --store-mb 0  # bad budget
expect_exit 74 "$BIN" session -i /nonexistent.dat --script "$DIR/session.txt"

# daemon mode: serve on a unix socket, drive it with the client, then
# shut down gracefully (SIGTERM drains and persists the store)
SOCK="$DIR/gg.sock"
SERVE_OUT="$DIR/serve.out"
"$BIN" serve -i "$DIR/data.dat" --socket "$SOCK" --store-dir "$DIR/dstore" \
    > "$SERVE_OUT" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || fail "serve: socket never appeared"

"$BIN" client --socket "$SOCK" --ping | grep -q "pong" || fail "client ping"
"$BIN" client --socket "$SOCK" --mine 0.05 | grep -q "route=none" \
    || fail "client scratch mine"
"$BIN" client --socket "$SOCK" --mine 0.05 | grep -q "route=exact" \
    || fail "client exact hit"

# the client script mode is the same command language as `session`,
# including the sticky tenant; save/load stay local-only over the wire
printf 'mine 0.02\nstats\nstore\n' > "$DIR/client.txt"
CLIENT_OUT="$DIR/client.out"
"$BIN" client --socket "$SOCK" --tenant acme --script "$DIR/client.txt" \
    > "$CLIENT_OUT" || fail "client script"
grep -q "route=recycle" "$CLIENT_OUT" || fail "client: no recycle route"
grep -q "tenant=acme" "$CLIENT_OUT" || fail "client: tenant not sticky"
grep -q "store: entries=" "$CLIENT_OUT" || fail "client: no store line"
grep -q "client: 3 commands, 1 mines" "$CLIENT_OUT" || fail "client summary"
printf 'save /tmp/nope\n' > "$DIR/client_save.txt"
expect_exit 64 "$BIN" client --socket "$SOCK" --script "$DIR/client_save.txt"

# process metrics over the wire: the daemon's serve.* counters are visible
"$BIN" client --socket "$SOCK" --stats | grep -q "gogreen_serve_requests" \
    || fail "client stats"

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || fail "serve: nonzero exit on SIGTERM"
grep -q "serving" "$SERVE_OUT" || fail "serve: no serving line"
grep -q "drained and stopped" "$SERVE_OUT" || fail "serve: no drain line"
grep -q "store: saved" "$SERVE_OUT" || fail "serve: store not persisted"
ls "$DIR/dstore"/*.gpat >/dev/null 2>&1 || fail "serve: no pattern files"
if [ -S "$SOCK" ]; then fail "serve: socket not unlinked"; fi

# a dead socket is a clean IO error, not a hang or a crash
expect_exit 74 "$BIN" client --socket "$SOCK" --ping

echo "cli smoke test passed"
