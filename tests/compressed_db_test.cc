// Tests for the CompressedDb container: construction, counting,
// decompression, serialization round-trips and corrupt-image handling.

#include "core/compressed_db.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/env.h"

namespace gogreen::core {
namespace {

using fpm::ItemId;

/// Builds the paper's Table 2 CDB by hand (items a..i as 0..8).
CompressedDb Table2Cdb() {
  constexpr ItemId a = 0, b = 1, c = 2, d = 3, e = 4, f = 5, g = 6, h = 7,
                   i = 8;
  CompressedDb cdb;
  cdb.AddGroup(std::vector<ItemId>{c, f, g});
  cdb.AddMember(0, std::vector<ItemId>{a, d, e});
  cdb.AddMember(1, std::vector<ItemId>{b, d});
  cdb.AddMember(2, std::vector<ItemId>{e});
  cdb.AddGroup(std::vector<ItemId>{a, e});
  cdb.AddMember(3, std::vector<ItemId>{c, i});
  cdb.AddMember(4, std::vector<ItemId>{h});
  return cdb;
}

std::string TempPath(const char* name) {
  return TempDir() + "/" + name + std::to_string(::getpid());
}

TEST(CompressedDbTest, BasicAccessors) {
  const CompressedDb cdb = Table2Cdb();
  EXPECT_EQ(cdb.NumGroups(), 2u);
  EXPECT_EQ(cdb.NumTuples(), 5u);
  EXPECT_EQ(cdb.Group(0).count, 3u);
  EXPECT_EQ(cdb.Group(1).count, 2u);
  EXPECT_EQ(cdb.MemberBegin(1), 3u);
  EXPECT_EQ(cdb.MemberEnd(1), 5u);
  EXPECT_EQ(cdb.StoredItems(), 5u + 9u);
  EXPECT_EQ(cdb.ItemUniverseSize(), 9u);
}

TEST(CompressedDbTest, CountItemSupportsMatchesOriginal) {
  const CompressedDb cdb = Table2Cdb();
  const std::vector<uint64_t> counts = cdb.CountItemSupports(9);
  // Original Table 1 supports: a3 b1 c4 d2 e4 f3 g3 h1 i1.
  EXPECT_EQ(counts, (std::vector<uint64_t>{3, 1, 4, 2, 4, 3, 3, 1, 1}));
}

TEST(CompressedDbTest, CountItemSupportsExpandsUniverse) {
  const CompressedDb cdb = Table2Cdb();
  EXPECT_EQ(cdb.CountItemSupports(20).size(), 20u);
  EXPECT_EQ(cdb.CountItemSupports(0).size(), 9u);  // Clamped up.
}

TEST(CompressedDbTest, DecompressMergesPatternAndOutlying) {
  const CompressedDb cdb = Table2Cdb();
  const fpm::TransactionDb db = cdb.Decompress();
  ASSERT_EQ(db.NumTransactions(), 5u);
  const fpm::ItemSpan t0 = db.Transaction(0);
  EXPECT_EQ(std::vector<ItemId>(t0.begin(), t0.end()),
            (std::vector<ItemId>{0, 2, 3, 4, 5, 6}));  // a,c,d,e,f,g
  const fpm::ItemSpan t4 = db.Transaction(4);
  EXPECT_EQ(std::vector<ItemId>(t4.begin(), t4.end()),
            (std::vector<ItemId>{0, 4, 7}));  // a,e,h
}

TEST(CompressedDbTest, SerializationRoundTrip) {
  const CompressedDb cdb = Table2Cdb();
  const std::string path = TempPath("cdb_roundtrip_");
  auto written = cdb.WriteTo(path);
  ASSERT_TRUE(written.ok()) << written.status().ToString();
  EXPECT_GT(written.value(), 0u);

  auto loaded = CompressedDb::ReadFrom(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumGroups(), cdb.NumGroups());
  EXPECT_EQ(loaded->NumTuples(), cdb.NumTuples());
  EXPECT_EQ(loaded->StoredItems(), cdb.StoredItems());
  EXPECT_EQ(loaded->CountItemSupports(9), cdb.CountItemSupports(9));
  for (uint64_t m = 0; m < cdb.NumTuples(); ++m) {
    EXPECT_EQ(loaded->MemberTid(m), cdb.MemberTid(m));
  }
  std::remove(path.c_str());
}

TEST(CompressedDbTest, ReadMissingFileFails) {
  auto result = CompressedDb::ReadFrom("/nonexistent/path/cdb.bin");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
}

TEST(CompressedDbTest, ReadRejectsGarbage) {
  const std::string path = TempPath("cdb_garbage_");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a compressed database image";
  }
  auto result = CompressedDb::ReadFrom(path);
  EXPECT_FALSE(result.ok());
  std::remove(path.c_str());
}

TEST(CompressedDbTest, ReadRejectsTruncatedImage) {
  const CompressedDb cdb = Table2Cdb();
  const std::string full = TempPath("cdb_full_");
  ASSERT_TRUE(cdb.WriteTo(full).ok());
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  const std::string trunc = TempPath("cdb_trunc_");
  {
    std::ofstream out(trunc, std::ios::binary);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
  }
  auto result = CompressedDb::ReadFrom(trunc);
  EXPECT_FALSE(result.ok());
  std::remove(full.c_str());
  std::remove(trunc.c_str());
}

TEST(CompressedDbTest, EmptyDb) {
  CompressedDb cdb;
  EXPECT_EQ(cdb.NumGroups(), 0u);
  EXPECT_EQ(cdb.NumTuples(), 0u);
  EXPECT_EQ(cdb.StoredItems(), 0u);
  EXPECT_TRUE(cdb.Decompress().NumTransactions() == 0);
}

}  // namespace
}  // namespace gogreen::core
