// Tests for top-K pattern mining.

#include "fpm/topk.h"

#include <gtest/gtest.h>

#include "fpm/miner.h"
#include "tests/test_util.h"

namespace gogreen::fpm {
namespace {

TEST(TopKTest, PaperExampleTop3) {
  TopKOptions options;
  options.k = 3;
  auto result = MineTopK(testutil::PaperExampleDb(), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->size(), 3u);
  // Highest supports: c:4 and e:4, then one of the support-3 patterns
  // (canonical tie-break picks {0} = a).
  EXPECT_EQ((*result)[0].support, 4u);
  EXPECT_EQ((*result)[1].support, 4u);
  EXPECT_EQ((*result)[2].support, 3u);
}

TEST(TopKTest, ExactlyKReturnedAndSortedBySupport) {
  const auto db = testutil::RandomDb(123, 400, 40, 6.0);
  TopKOptions options;
  options.k = 25;
  auto result = MineTopK(db, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 25u);
  for (size_t i = 1; i < result->size(); ++i) {
    EXPECT_GE((*result)[i - 1].support, (*result)[i].support);
  }
}

TEST(TopKTest, MatchesCompleteSetPrefix) {
  // The top-K result must equal the K best of the complete set at
  // threshold = the K-th support.
  const auto db = testutil::RandomDb(124, 300, 30, 5.0);
  TopKOptions options;
  options.k = 15;
  auto topk = MineTopK(db, options);
  ASSERT_TRUE(topk.ok());
  const uint64_t kth = (*topk)[topk->size() - 1].support;
  auto complete = CreateMiner(MinerKind::kFpGrowth)->Mine(db, kth);
  ASSERT_TRUE(complete.ok());
  // Every returned pattern's support appears in the complete set with the
  // same value, and nothing in the complete set beats the K-th support
  // without being included.
  size_t better = 0;
  for (const auto& p : *complete) {
    if (p.support > kth) ++better;
    EXPECT_EQ(complete->SupportOf(ItemSpan(p.items)), p.support);
  }
  EXPECT_LE(better, options.k);
  for (const auto& p : *topk) {
    EXPECT_EQ(complete->SupportOf(ItemSpan(p.items)), p.support);
  }
}

TEST(TopKTest, MinLengthSkipsSingletons) {
  TopKOptions options;
  options.k = 5;
  options.min_length = 2;
  auto result = MineTopK(testutil::PaperExampleDb(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 5u);
  for (const auto& p : *result) EXPECT_GE(p.size(), 2u);
  // The best 2+-pattern in Table 1 has support 3.
  EXPECT_EQ((*result)[0].support, 3u);
}

TEST(TopKTest, FewerPatternsThanK) {
  TransactionDb db;
  db.AddTransaction({1, 2});
  TopKOptions options;
  options.k = 100;
  auto result = MineTopK(db, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 3u);  // {1},{2},{1,2} only.
}

TEST(TopKTest, EmptyDatabase) {
  TransactionDb db;
  auto result = MineTopK(db, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->empty());
}

TEST(TopKTest, BadArguments) {
  TopKOptions zero_k;
  zero_k.k = 0;
  EXPECT_FALSE(MineTopK(testutil::PaperExampleDb(), zero_k).ok());
  TopKOptions zero_len;
  zero_len.min_length = 0;
  EXPECT_FALSE(MineTopK(testutil::PaperExampleDb(), zero_len).ok());
}

}  // namespace
}  // namespace gogreen::fpm
