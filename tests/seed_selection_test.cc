// Unit tests for core::SelectSeed: route classification (exact / filter-down
// / recycle), route preference ordering, and the within-route tie-breaking
// rules — filter-down wants the largest cached support below the target,
// recycling wants the smallest above it (the paper's tightest-xi_old rule),
// then a memoized compressed image, then recency.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/seed_selection.h"

namespace gogreen {
namespace {

using core::SeedCandidate;
using core::SeedChoice;
using core::SeedRoute;
using core::SelectSeed;

SeedCandidate Cand(uint64_t min_support, bool has_compressed = false,
                   uint64_t last_used = 0, size_t tag = 0) {
  SeedCandidate c;
  c.min_support = min_support;
  c.has_compressed = has_compressed;
  c.last_used = last_used;
  c.tag = tag;
  return c;
}

TEST(SeedSelectionTest, EmptyCandidatesGiveNoRoute) {
  EXPECT_EQ(SelectSeed({}, 10).route, SeedRoute::kNone);
}

TEST(SeedSelectionTest, ZeroTargetGivesNoRoute) {
  EXPECT_EQ(SelectSeed({Cand(10)}, 0).route, SeedRoute::kNone);
}

TEST(SeedSelectionTest, ZeroSupportCandidatesAreSkipped) {
  EXPECT_EQ(SelectSeed({Cand(0), Cand(0)}, 10).route, SeedRoute::kNone);
}

TEST(SeedSelectionTest, SingleCandidateClassifiesByComparison) {
  // Equal support: exact hit.
  EXPECT_EQ(SelectSeed({Cand(10)}, 10).route, SeedRoute::kExact);
  // Cached below the target: the cached set is a superset, filter it.
  EXPECT_EQ(SelectSeed({Cand(5)}, 10).route, SeedRoute::kFilterDown);
  // Cached above the target (xi_old >= xi_new): recycle.
  EXPECT_EQ(SelectSeed({Cand(20)}, 10).route, SeedRoute::kRecycle);
}

TEST(SeedSelectionTest, RoutePreferenceExactBeatsFilterBeatsRecycle) {
  // All three classes present: exact wins.
  SeedChoice c = SelectSeed({Cand(20, false, 0, 1), Cand(5, false, 0, 2),
                             Cand(10, false, 0, 3)},
                            10);
  EXPECT_EQ(c.route, SeedRoute::kExact);
  EXPECT_EQ(c.tag, 3u);
  EXPECT_EQ(c.min_support, 10u);

  // No exact: filter-down beats recycle even when the recycle candidate has
  // a memoized image and better recency.
  c = SelectSeed({Cand(20, true, 99, 1), Cand(5, false, 0, 2)}, 10);
  EXPECT_EQ(c.route, SeedRoute::kFilterDown);
  EXPECT_EQ(c.tag, 2u);
}

TEST(SeedSelectionTest, FilterDownPrefersLargestSupportBelowTarget) {
  // xi' = 9 is closest below the target: fewest extra patterns to drop.
  SeedChoice c = SelectSeed(
      {Cand(3, false, 0, 1), Cand(9, false, 0, 2), Cand(6, false, 0, 3)}, 10);
  EXPECT_EQ(c.route, SeedRoute::kFilterDown);
  EXPECT_EQ(c.min_support, 9u);
  EXPECT_EQ(c.tag, 2u);
}

TEST(SeedSelectionTest, RecyclePrefersSmallestSupportAboveTarget) {
  // The tightest xi_old: the richest cached set, best compression.
  SeedChoice c = SelectSeed(
      {Cand(40, false, 0, 1), Cand(15, false, 0, 2), Cand(25, false, 0, 3)},
      10);
  EXPECT_EQ(c.route, SeedRoute::kRecycle);
  EXPECT_EQ(c.min_support, 15u);
  EXPECT_EQ(c.tag, 2u);
}

TEST(SeedSelectionTest, EqualDistanceBreaksOnCompressedImage) {
  // Same support twice; the one with a memoized image saves the compression
  // pass and must win, regardless of input order.
  SeedChoice c =
      SelectSeed({Cand(15, false, 5, 1), Cand(15, true, 0, 2)}, 10);
  EXPECT_EQ(c.route, SeedRoute::kRecycle);
  EXPECT_EQ(c.tag, 2u);

  c = SelectSeed({Cand(15, true, 0, 2), Cand(15, false, 5, 1)}, 10);
  EXPECT_EQ(c.tag, 2u);
}

TEST(SeedSelectionTest, FinalTieBreaksOnRecency) {
  SeedChoice c =
      SelectSeed({Cand(15, false, 3, 1), Cand(15, false, 7, 2)}, 10);
  EXPECT_EQ(c.tag, 2u);

  c = SelectSeed({Cand(15, false, 7, 2), Cand(15, false, 3, 1)}, 10);
  EXPECT_EQ(c.tag, 2u);
}

TEST(SeedSelectionTest, ExactTiesAlsoBreakOnImageThenRecency) {
  SeedChoice c = SelectSeed({Cand(10, false, 9, 1), Cand(10, true, 0, 2)}, 10);
  EXPECT_EQ(c.route, SeedRoute::kExact);
  EXPECT_EQ(c.tag, 2u);

  c = SelectSeed({Cand(10, false, 1, 1), Cand(10, false, 4, 2)}, 10);
  EXPECT_EQ(c.tag, 2u);
}

TEST(SeedSelectionTest, MatchesRecyclingSessionSingleCandidateContract) {
  // The RecyclingSession feeds exactly one candidate (its last cached set).
  // xi_old >= xi_new must always produce a usable route — this is the
  // paper's recyclability condition (Section 3.2).
  for (uint64_t cached = 1; cached <= 30; ++cached) {
    SeedChoice c = SelectSeed({Cand(cached)}, 10);
    if (cached == 10) {
      EXPECT_EQ(c.route, SeedRoute::kExact);
    } else if (cached < 10) {
      EXPECT_EQ(c.route, SeedRoute::kFilterDown);
    } else {
      EXPECT_EQ(c.route, SeedRoute::kRecycle);
    }
  }
}

TEST(SeedSelectionTest, RouteNamesAreStable) {
  // The session REPL prints these; keep them spelled as documented.
  EXPECT_STREQ(core::SeedRouteName(SeedRoute::kNone), "none");
  EXPECT_STREQ(core::SeedRouteName(SeedRoute::kExact), "exact");
  EXPECT_STREQ(core::SeedRouteName(SeedRoute::kFilterDown), "filter-down");
  EXPECT_STREQ(core::SeedRouteName(SeedRoute::kRecycle), "recycle");
}

}  // namespace
}  // namespace gogreen
