// Tests for the CSR transaction database.

#include "fpm/transaction_db.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace gogreen::fpm {
namespace {

TEST(TransactionDbTest, EmptyDb) {
  TransactionDb db;
  EXPECT_EQ(db.NumTransactions(), 0u);
  EXPECT_EQ(db.TotalItems(), 0u);
  EXPECT_EQ(db.AvgLength(), 0.0);
  EXPECT_EQ(db.ItemUniverseSize(), 0u);
}

TEST(TransactionDbTest, AddTransactionCanonicalizes) {
  TransactionDb db;
  db.AddTransaction({7, 2, 7, 4});
  ASSERT_EQ(db.NumTransactions(), 1u);
  const ItemSpan row = db.Transaction(0);
  EXPECT_EQ(std::vector<ItemId>(row.begin(), row.end()),
            (std::vector<ItemId>{2, 4, 7}));
}

TEST(TransactionDbTest, StatsOnPaperExample) {
  const TransactionDb db = testutil::PaperExampleDb();
  EXPECT_EQ(db.NumTransactions(), 5u);
  EXPECT_EQ(db.TotalItems(), 6u + 5 + 4 + 4 + 3);
  EXPECT_DOUBLE_EQ(db.AvgLength(), 22.0 / 5.0);
  EXPECT_EQ(db.ItemUniverseSize(), 9u);  // Items 0..8.
  EXPECT_EQ(db.NumDistinctItems(), 9u);
}

TEST(TransactionDbTest, CountItemSupports) {
  const TransactionDb db = testutil::PaperExampleDb();
  const std::vector<uint64_t> counts = db.CountItemSupports();
  // a=0:3 b=1:1 c=2:4 d=3:2 e=4:4 f=5:3 g=6:3 h=7:1 i=8:1
  EXPECT_EQ(counts, (std::vector<uint64_t>{3, 1, 4, 2, 4, 3, 3, 1, 1}));
}

TEST(TransactionDbTest, CountSupportFullScan) {
  const TransactionDb db = testutil::PaperExampleDb();
  EXPECT_EQ(db.CountSupport(std::vector<ItemId>{5, 6}), 3u);       // fg
  EXPECT_EQ(db.CountSupport(std::vector<ItemId>{2, 5, 6}), 3u);    // fgc
  EXPECT_EQ(db.CountSupport(std::vector<ItemId>{0, 4}), 3u);       // ae
  EXPECT_EQ(db.CountSupport(std::vector<ItemId>{1, 7}), 0u);       // bh
  EXPECT_EQ(db.CountSupport(std::vector<ItemId>{}), 5u);  // Empty set: all.
}

TEST(TransactionDbTest, EmptyTransactionAllowed) {
  TransactionDb db;
  db.AddTransaction({});
  db.AddTransaction({1});
  EXPECT_EQ(db.NumTransactions(), 2u);
  EXPECT_TRUE(db.Transaction(0).empty());
  EXPECT_EQ(db.CountSupport(std::vector<ItemId>{1}), 1u);
}

TEST(TransactionDbTest, MemoryUsageGrowsWithContent) {
  TransactionDb small;
  small.AddTransaction({1});
  TransactionDb big;
  for (int i = 0; i < 1000; ++i) big.AddTransaction({1, 2, 3, 4, 5});
  EXPECT_GT(big.MemoryUsage(), small.MemoryUsage());
}

}  // namespace
}  // namespace gogreen::fpm
