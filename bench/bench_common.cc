#include "bench/bench_common.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <vector>

#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "core/disk_recycle.h"
#include "fpm/miner.h"
#include "fpm/partition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/env.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace gogreen::bench {

namespace {

using core::CompressedDb;
using core::CompressionStats;
using core::CompressionStrategy;
using core::MatcherKind;
using core::RecycleAlgo;
using data::DatasetId;
using data::DatasetSpec;
using fpm::PatternSet;
using fpm::TransactionDb;

struct FamilyInfo {
  const char* baseline_name;
  const char* mcp_name;
  const char* mlp_name;
  fpm::MinerKind baseline;
  RecycleAlgo recycler;
};

FamilyInfo InfoOf(AlgoFamily family) {
  switch (family) {
    case AlgoFamily::kHMine:
      return {"H-Mine", "HM-MCP", "HM-MLP", fpm::MinerKind::kHMine,
              RecycleAlgo::kHMine};
    case AlgoFamily::kFpGrowth:
      return {"FP", "FP-MCP", "FP-MLP", fpm::MinerKind::kFpGrowth,
              RecycleAlgo::kFpGrowth};
    case AlgoFamily::kTreeProjection:
      return {"TP", "TP-MCP", "TP-MLP", fpm::MinerKind::kTreeProjection,
              RecycleAlgo::kTreeProjection};
  }
  return {"?", "?", "?", fpm::MinerKind::kHMine, RecycleAlgo::kHMine};
}

/// Work counters and span seconds observed around one measured run.
struct RunMeasurement {
  double wall_seconds = 0.0;
  double mine_seconds = 0.0;  ///< Span-attributed in-algorithm time.
  size_t patterns = 0;
  uint64_t items_scanned = 0;
  uint64_t projections_built = 0;
};

/// Sums all `mine.*` span aggregates (seconds).
double MineSpanSeconds() {
  double total = 0.0;
  for (const auto& [name, secs] : obs::Tracer::Global().AggregateSeconds()) {
    if (name.rfind("mine.", 0) == 0) total += secs;
  }
  return total;
}

uint64_t CounterNow(const char* name) {
  return obs::MetricRegistry::Global().GetCounter(name)->Value();
}

/// Runs a miner, measuring wall time plus registry/span deltas; prints and
/// exits on error.
template <typename Fn>
RunMeasurement Measure(Fn&& fn) {
  RunMeasurement m;
  const uint64_t items0 = CounterNow("mine.items_scanned");
  const uint64_t projs0 = CounterNow("mine.projections_built");
  const double spans0 = MineSpanSeconds();
  Timer timer;
  auto result = fn();
  m.wall_seconds = timer.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  m.patterns = result.value().size();
  m.items_scanned = CounterNow("mine.items_scanned") - items0;
  m.projections_built = CounterNow("mine.projections_built") - projs0;
  m.mine_seconds = MineSpanSeconds() - spans0;
  return m;
}

std::string SanitizeFigureTag(const char* figure) {
  std::string tag;
  for (const char* p = figure; *p; ++p) {
    const char c = *p;
    if (std::isalnum(static_cast<unsigned char>(c))) {
      tag += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else if (!tag.empty() && tag.back() != '_') {
      tag += '_';
    }
  }
  while (!tag.empty() && tag.back() == '_') tag.pop_back();
  return tag;
}

std::string JsonPathFor(const char* figure, const BenchOptions& options) {
  if (!options.json_path.empty()) return options.json_path;
  return "BENCH_" + SanitizeFigureTag(figure) + ".json";
}

/// Accumulates one figure's machine-readable document. Rows are emitted as
/// a JSON array under "rows"; scalar context fields are set up front.
class JsonReport {
 public:
  void Field(const char* key, const std::string& value) {
    // Built piecewise: `"\"" + JsonEscape(...) + ...` trips a GCC 12
    // -Wrestrict false positive through the inlined string operator+.
    std::string quoted = "\"";
    quoted += obs::JsonEscape(value);
    quoted += '"';
    Raw(key, quoted);
  }
  void Field(const char* key, double value) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.9g", value);
    Raw(key, buf);
  }
  void Field(const char* key, uint64_t value) {
    Raw(key, std::to_string(value));
  }

  void AddRow(const std::string& row_json) { rows_.push_back(row_json); }

  bool WriteTo(const std::string& path, const char* figure) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return false;
    }
    std::ostringstream os;
    os << "{\"figure\":\"" << obs::JsonEscape(figure) << "\"";
    for (const auto& [key, value] : fields_) {
      os << ",\"" << obs::JsonEscape(key) << "\":" << value;
    }
    os << ",\"rows\":[";
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (i > 0) os << ",";
      os << rows_[i];
    }
    os << "]}";
    const std::string doc = os.str();
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    if (ok) std::printf("wrote %s\n", path.c_str());
    return ok;
  }

 private:
  void Raw(const char* key, const std::string& value) {
    fields_.emplace_back(key, value);
  }

  std::vector<std::pair<std::string, std::string>> fields_;
  std::vector<std::string> rows_;
};

/// One algorithm's cell of a sweep row as a JSON object. `threads` records
/// the pool size the measurement ran with (the mined output is identical at
/// any count, so rows differing only in threads are directly comparable).
std::string RunJson(const char* algorithm, double xi_new,
                    const RunMeasurement& m, double compress_seconds) {
  char buf[440];
  std::snprintf(
      buf, sizeof(buf),
      "{\"algorithm\":\"%s\",\"xi_new\":%.9g,\"threads\":%zu,"
      "\"seconds\":%.9g,\"mine_seconds\":%.9g,\"compress_seconds\":%.9g,"
      "\"patterns\":%zu,\"counters\":{\"mine.items_scanned\":%" PRIu64
      ",\"mine.projections_built\":%" PRIu64 "}}",
      algorithm, xi_new, ThreadPool::GlobalThreads(), m.wall_seconds,
      m.mine_seconds, compress_seconds, m.patterns, m.items_scanned,
      m.projections_built);
  return buf;
}

/// Thread counts to measure: `--threads` list when given, else the single
/// count currently configured for the global pool.
std::vector<unsigned> ThreadSweep(const BenchOptions& options) {
  if (!options.threads.empty()) return options.threads;
  return {static_cast<unsigned>(ThreadPool::GlobalThreads())};
}

/// Restores the global pool size on scope exit so a sweep cannot leak its
/// last thread count into the caller.
class ScopedThreadRestore {
 public:
  ScopedThreadRestore() : original_(ThreadPool::GlobalThreads()) {}
  ~ScopedThreadRestore() { ThreadPool::SetGlobalThreads(original_); }

 private:
  size_t original_;
};

}  // namespace

BenchOptions ParseBenchOptions(int argc, char** argv) {
  BenchOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      options.json = true;
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        options.json_path = argv[++i];
      }
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      // Comma-separated counts ("1,2,4"); malformed entries are skipped so
      // the binaries never fail on a typo, they just measure less.
      for (const char* p = argv[++i]; *p != '\0';) {
        char* end = nullptr;
        const unsigned long v = std::strtoul(p, &end, 10);
        if (end != p && v >= 1 && v <= 1024) {
          options.threads.push_back(static_cast<unsigned>(v));
        }
        if (end == nullptr || *end == '\0') break;
        p = (end == p) ? p + 1 : end + 1;
      }
    }
  }
  return options;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.4fs", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  }
  return buf;
}

void PrintHeader(const char* figure, const char* title) {
  std::printf("== %s: %s ==\n", figure, title);
}

int RunRuntimeFigure(const char* figure, DatasetId dataset, AlgoFamily family,
                     bool log_scale_note, const BenchOptions& options) {
  const DatasetSpec& spec = data::GetDatasetSpec(dataset);
  const FamilyInfo info = InfoOf(family);
  const BenchScale scale = GetBenchScale();

  // Phase attribution (compress vs. mine) comes from the obs spans; the
  // spans are coarse (one per run), so keeping the tracer on for the whole
  // figure costs nothing measurable.
  obs::Tracer::Global().Enable(/*record_events=*/false);

  char title[256];
  std::snprintf(title, sizeof(title),
                "%s (%s) — %s family, runtime vs xi_new%s", spec.paper_name,
                spec.name, info.baseline_name,
                log_scale_note ? " [paper plots log scale]" : "");
  PrintHeader(figure, title);

  auto db_result = data::MakeDataset(dataset, scale);
  if (!db_result.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 db_result.status().ToString().c_str());
    return 1;
  }
  const TransactionDb db = std::move(db_result).value();

  // Phase 0: the earlier mining round whose output we recycle.
  const uint64_t old_sup =
      fpm::AbsoluteSupport(spec.xi_old, db.NumTransactions());
  Timer timer;
  auto base_miner = fpm::CreateMiner(info.baseline);
  auto fp_old_result = base_miner->Mine(db, old_sup);
  if (!fp_old_result.ok()) {
    std::fprintf(stderr, "xi_old mine: %s\n",
                 fp_old_result.status().ToString().c_str());
    return 1;
  }
  const PatternSet fp_old = std::move(fp_old_result).value();
  const double old_mine_secs = timer.ElapsedSeconds();

  // Phase 1: compression with both strategies, span-timed.
  CompressionStats mcp_stats;
  CompressionStats mlp_stats;
  const double compress_span0 =
      obs::Tracer::Global().SecondsFor("compress");
  auto mcp_result = core::CompressDatabase(
      db, fp_old, {CompressionStrategy::kMcp, MatcherKind::kAuto},
      &mcp_stats);
  const double mcp_span = obs::Tracer::Global().SecondsFor("compress");
  auto mlp_result = core::CompressDatabase(
      db, fp_old, {CompressionStrategy::kMlp, MatcherKind::kAuto},
      &mlp_stats);
  const double mlp_span = obs::Tracer::Global().SecondsFor("compress");
  if (!mcp_result.ok() || !mlp_result.ok()) {
    const Status& bad =
        mcp_result.ok() ? mlp_result.status() : mcp_result.status();
    std::fprintf(stderr, "compression (%s): %s\n",
                 mcp_result.ok() ? "mlp" : "mcp", bad.ToString().c_str());
    return 1;
  }
  const double compress_mcp_secs = mcp_span - compress_span0;
  const double compress_mlp_secs = mlp_span - mcp_span;
  const CompressedDb cdb_mcp = std::move(mcp_result).value();
  const CompressedDb cdb_mlp = std::move(mlp_result).value();

  std::printf(
      "dataset=%s scale=%s tuples=%zu avg_len=%.1f xi_old=%.4g%% "
      "(mined in %s, %zu patterns, max len %zu)\n",
      spec.name, BenchScaleName(scale), db.NumTransactions(), db.AvgLength(),
      spec.xi_old * 100, FormatSeconds(old_mine_secs).c_str(), fp_old.size(),
      fp_old.MaxLength());
  std::printf(
      "phase I (compress, spans): MCP ratio=%.3f time=%s | MLP ratio=%.3f "
      "time=%s\n",
      mcp_stats.Ratio(), FormatSeconds(compress_mcp_secs).c_str(),
      mlp_stats.Ratio(), FormatSeconds(compress_mlp_secs).c_str());
  JsonReport report;
  report.Field("dataset", std::string(spec.name));
  report.Field("scale", std::string(BenchScaleName(scale)));
  report.Field("tuples", static_cast<uint64_t>(db.NumTransactions()));
  report.Field("xi_old", spec.xi_old);
  report.Field("old_mine_seconds", old_mine_secs);
  report.Field("old_patterns", static_cast<uint64_t>(fp_old.size()));
  report.Field("compress_mcp_seconds", compress_mcp_secs);
  report.Field("compress_mlp_seconds", compress_mlp_secs);
  report.Field("compress_mcp_ratio", mcp_stats.Ratio());
  report.Field("compress_mlp_ratio", mlp_stats.Ratio());

  const std::vector<unsigned> thread_sweep = ThreadSweep(options);
  report.Field("threads", static_cast<uint64_t>(thread_sweep.front()));
  ScopedThreadRestore restore_threads;

  double base_total = 0.0;
  double mcp_total = 0.0;
  double mlp_total = 0.0;
  bool counts_agree = true;
  for (const unsigned threads : thread_sweep) {
    if (!options.threads.empty()) ThreadPool::SetGlobalThreads(threads);
    if (thread_sweep.size() > 1) std::printf("-- threads=%u --\n", threads);
    std::printf("%-9s %12s %12s %12s %11s %11s %10s\n", "xi_new",
                info.baseline_name, info.mcp_name, info.mlp_name,
                "speedup-MCP", "speedup-MLP", "#patterns");
    for (const double xi : spec.xi_new_sweep) {
      const uint64_t sup = fpm::AbsoluteSupport(xi, db.NumTransactions());

      const RunMeasurement base = Measure([&] {
        auto miner = fpm::CreateMiner(info.baseline);
        return miner->Mine(db, sup);
      });
      const RunMeasurement mcp = Measure([&] {
        auto miner = core::CreateCompressedMiner(info.recycler);
        return miner->MineCompressed(cdb_mcp, sup);
      });
      const RunMeasurement mlp = Measure([&] {
        auto miner = core::CreateCompressedMiner(info.recycler);
        return miner->MineCompressed(cdb_mlp, sup);
      });

      if (base.patterns != mcp.patterns || base.patterns != mlp.patterns) {
        counts_agree = false;
      }
      base_total += base.mine_seconds;
      mcp_total += mcp.mine_seconds;
      mlp_total += mlp.mine_seconds;
      std::printf("%-8.4g%% %12s %12s %12s %10.1fx %10.1fx %10zu\n",
                  xi * 100, FormatSeconds(base.wall_seconds).c_str(),
                  FormatSeconds(mcp.wall_seconds).c_str(),
                  FormatSeconds(mlp.wall_seconds).c_str(),
                  mcp.wall_seconds > 0 ? base.wall_seconds / mcp.wall_seconds
                                       : 0.0,
                  mlp.wall_seconds > 0 ? base.wall_seconds / mlp.wall_seconds
                                       : 0.0,
                  base.patterns);
      std::fflush(stdout);

      if (options.json) {
        report.AddRow(RunJson(info.baseline_name, xi, base, 0.0));
        report.AddRow(RunJson(info.mcp_name, xi, mcp, compress_mcp_secs));
        report.AddRow(RunJson(info.mlp_name, xi, mlp, compress_mlp_secs));
      }
    }
  }
  std::printf(
      "phase II (mine, spans): %s %s | %s %s | %s %s\n", info.baseline_name,
      FormatSeconds(base_total).c_str(), info.mcp_name,
      FormatSeconds(mcp_total).c_str(), info.mlp_name,
      FormatSeconds(mlp_total).c_str());
  std::printf("result check: %s\n\n",
              counts_agree ? "pattern counts agree across all variants"
                           : "MISMATCH in pattern counts (BUG)");

  if (options.json &&
      !report.WriteTo(JsonPathFor(figure, options), figure)) {
    return 1;
  }
  return counts_agree ? 0 : 2;
}

int RunMemoryLimitFigure(const char* figure, DatasetId dataset,
                         bool log_scale_note, const BenchOptions& options) {
  const DatasetSpec& spec = data::GetDatasetSpec(dataset);
  const BenchScale scale = GetBenchScale();

  obs::Tracer::Global().Enable(/*record_events=*/false);

  char title[256];
  std::snprintf(title, sizeof(title),
                "%s (%s) — memory-limited H-Mine vs HM-MCP%s",
                spec.paper_name, spec.name,
                log_scale_note ? " [paper plots log scale]" : "");
  PrintHeader(figure, title);

  auto db_result = data::MakeDataset(dataset, scale);
  if (!db_result.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 db_result.status().ToString().c_str());
    return 1;
  }
  const TransactionDb db = std::move(db_result).value();

  // The paper limits memory to 4MB / 8MB against full-size datasets; scale
  // the budgets with the dataset so the limit still bites.
  const double fraction =
      static_cast<double>(data::DatasetTransactions(dataset, scale)) /
      static_cast<double>(
          data::DatasetTransactions(dataset, BenchScale::kFull));
  const size_t limit_lo = static_cast<size_t>(4.0 * (1 << 20) * fraction);
  const size_t limit_hi = static_cast<size_t>(8.0 * (1 << 20) * fraction);

  const uint64_t old_sup =
      fpm::AbsoluteSupport(spec.xi_old, db.NumTransactions());
  auto fp_miner = fpm::CreateMiner(fpm::MinerKind::kHMine);
  auto fp_old = fp_miner->Mine(db, old_sup);
  if (!fp_old.ok()) {
    std::fprintf(stderr, "xi_old mine: %s\n",
                 fp_old.status().ToString().c_str());
    return 1;
  }
  auto cdb_result = core::CompressDatabase(
      db, fp_old.value(), {CompressionStrategy::kMcp, MatcherKind::kAuto});
  if (!cdb_result.ok()) {
    std::fprintf(stderr, "compression: %s\n",
                 cdb_result.status().ToString().c_str());
    return 1;
  }
  const CompressedDb cdb = std::move(cdb_result).value();

  std::printf(
      "dataset=%s scale=%s tuples=%zu xi_old=%.4g%% limits=%.2fMB/%.2fMB "
      "(paper: 4MB/8MB at full scale)\n",
      spec.name, BenchScaleName(scale), db.NumTransactions(),
      spec.xi_old * 100, static_cast<double>(limit_lo) / (1 << 20),
      static_cast<double>(limit_hi) / (1 << 20));
  std::printf("%-9s %14s %14s %14s %14s %10s\n", "xi_new", "H-Mine(loM)",
              "HM-MCP(loM)", "H-Mine(hiM)", "HM-MCP(hiM)", "#patterns");

  JsonReport report;
  report.Field("dataset", std::string(spec.name));
  report.Field("scale", std::string(BenchScaleName(scale)));
  report.Field("tuples", static_cast<uint64_t>(db.NumTransactions()));
  report.Field("xi_old", spec.xi_old);
  report.Field("limit_lo_bytes", static_cast<uint64_t>(limit_lo));
  report.Field("limit_hi_bytes", static_cast<uint64_t>(limit_hi));

  // Memory-limited runs honour a single --threads value (no sweep: the
  // partitioned path is dominated by spill I/O, not mining parallelism).
  ScopedThreadRestore restore_threads;
  if (!options.threads.empty()) {
    ThreadPool::SetGlobalThreads(options.threads.front());
  }
  report.Field("threads",
               static_cast<uint64_t>(ThreadPool::GlobalThreads()));

  const std::string tmp = TempDir();
  bool counts_agree = true;
  for (const double xi : spec.xi_new_sweep) {
    const uint64_t sup = fpm::AbsoluteSupport(xi, db.NumTransactions());
    const RunMeasurement hm_lo = Measure(
        [&] { return fpm::MineHMineMemoryLimited(db, sup, limit_lo, tmp); });
    const RunMeasurement rc_lo = Measure([&] {
      return core::MineRecycleHMMemoryLimited(cdb, sup, limit_lo, tmp);
    });
    const RunMeasurement hm_hi = Measure(
        [&] { return fpm::MineHMineMemoryLimited(db, sup, limit_hi, tmp); });
    const RunMeasurement rc_hi = Measure([&] {
      return core::MineRecycleHMMemoryLimited(cdb, sup, limit_hi, tmp);
    });
    if (hm_lo.patterns != rc_lo.patterns ||
        hm_lo.patterns != hm_hi.patterns ||
        hm_lo.patterns != rc_hi.patterns) {
      counts_agree = false;
    }
    std::printf("%-8.4g%% %14s %14s %14s %14s %10zu\n", xi * 100,
                FormatSeconds(hm_lo.wall_seconds).c_str(),
                FormatSeconds(rc_lo.wall_seconds).c_str(),
                FormatSeconds(hm_hi.wall_seconds).c_str(),
                FormatSeconds(rc_hi.wall_seconds).c_str(), hm_lo.patterns);
    std::fflush(stdout);

    if (options.json) {
      report.AddRow(RunJson("H-Mine(loM)", xi, hm_lo, 0.0));
      report.AddRow(RunJson("HM-MCP(loM)", xi, rc_lo, 0.0));
      report.AddRow(RunJson("H-Mine(hiM)", xi, hm_hi, 0.0));
      report.AddRow(RunJson("HM-MCP(hiM)", xi, rc_hi, 0.0));
    }
  }
  std::printf("result check: %s\n\n",
              counts_agree ? "pattern counts agree across all variants"
                           : "MISMATCH in pattern counts (BUG)");

  if (options.json &&
      !report.WriteTo(JsonPathFor(figure, options), figure)) {
    return 1;
  }
  return counts_agree ? 0 : 2;
}

int RunThreadScalingFigure(const char* figure, DatasetId dataset,
                           AlgoFamily family, const BenchOptions& options) {
  const DatasetSpec& spec = data::GetDatasetSpec(dataset);
  const FamilyInfo info = InfoOf(family);
  const BenchScale scale = GetBenchScale();

  obs::Tracer::Global().Enable(/*record_events=*/false);

  char title[256];
  std::snprintf(title, sizeof(title),
                "%s (%s) — %s family, runtime vs threads", spec.paper_name,
                spec.name, info.baseline_name);
  PrintHeader(figure, title);

  auto db_result = data::MakeDataset(dataset, scale);
  if (!db_result.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 db_result.status().ToString().c_str());
    return 1;
  }
  const TransactionDb db = std::move(db_result).value();

  // Fix xi_new at the hardest (lowest) support of the sweep: that is where
  // the mining tree is deepest and parallel fan-out has work to hide.
  const double xi =
      *std::min_element(spec.xi_new_sweep.begin(), spec.xi_new_sweep.end());
  const uint64_t sup = fpm::AbsoluteSupport(xi, db.NumTransactions());
  const uint64_t old_sup =
      fpm::AbsoluteSupport(spec.xi_old, db.NumTransactions());

  auto base_miner = fpm::CreateMiner(info.baseline);
  auto fp_old_result = base_miner->Mine(db, old_sup);
  if (!fp_old_result.ok()) {
    std::fprintf(stderr, "xi_old mine: %s\n",
                 fp_old_result.status().ToString().c_str());
    return 1;
  }
  const PatternSet fp_old = std::move(fp_old_result).value();
  auto mcp_result = core::CompressDatabase(
      db, fp_old, {CompressionStrategy::kMcp, MatcherKind::kAuto});
  if (!mcp_result.ok()) {
    std::fprintf(stderr, "compression: %s\n",
                 mcp_result.status().ToString().c_str());
    return 1;
  }
  const CompressedDb cdb = std::move(mcp_result).value();

  std::vector<unsigned> sweep = options.threads;
  if (sweep.empty()) sweep = {1, 2, 4, 8};

  std::printf(
      "dataset=%s scale=%s tuples=%zu xi_old=%.4g%% xi_new=%.4g%% "
      "(hardware threads: %u)\n",
      spec.name, BenchScaleName(scale), db.NumTransactions(),
      spec.xi_old * 100, xi * 100,
      static_cast<unsigned>(ThreadPool::DefaultThreads()));
  std::printf("%-8s %12s %11s %12s %11s %10s\n", "threads",
              info.baseline_name, "scaling", info.mcp_name, "scaling",
              "#patterns");

  JsonReport report;
  report.Field("dataset", std::string(spec.name));
  report.Field("scale", std::string(BenchScaleName(scale)));
  report.Field("tuples", static_cast<uint64_t>(db.NumTransactions()));
  report.Field("xi_old", spec.xi_old);
  report.Field("xi_new", xi);
  report.Field("hardware_threads",
               static_cast<uint64_t>(ThreadPool::DefaultThreads()));

  ScopedThreadRestore restore_threads;
  double base_ref = 0.0;
  double mcp_ref = 0.0;
  size_t ref_patterns = 0;
  bool counts_agree = true;
  for (size_t i = 0; i < sweep.size(); ++i) {
    ThreadPool::SetGlobalThreads(sweep[i]);
    const RunMeasurement base = Measure([&] {
      auto miner = fpm::CreateMiner(info.baseline);
      return miner->Mine(db, sup);
    });
    const RunMeasurement mcp = Measure([&] {
      auto miner = core::CreateCompressedMiner(info.recycler);
      return miner->MineCompressed(cdb, sup);
    });
    if (i == 0) {
      base_ref = base.wall_seconds;
      mcp_ref = mcp.wall_seconds;
      ref_patterns = base.patterns;
    }
    // Output is guaranteed bit-identical at any thread count; the pattern
    // counts double-check that here, outside the unit-test harness.
    if (base.patterns != ref_patterns || mcp.patterns != ref_patterns) {
      counts_agree = false;
    }
    std::printf("%-8u %12s %10.2fx %12s %10.2fx %10zu\n", sweep[i],
                FormatSeconds(base.wall_seconds).c_str(),
                base.wall_seconds > 0 ? base_ref / base.wall_seconds : 0.0,
                FormatSeconds(mcp.wall_seconds).c_str(),
                mcp.wall_seconds > 0 ? mcp_ref / mcp.wall_seconds : 0.0,
                base.patterns);
    std::fflush(stdout);

    if (options.json) {
      report.AddRow(RunJson(info.baseline_name, xi, base, 0.0));
      report.AddRow(RunJson(info.mcp_name, xi, mcp, 0.0));
    }
  }
  std::printf("result check: %s\n\n",
              counts_agree
                  ? "pattern counts agree across all thread counts"
                  : "MISMATCH in pattern counts across threads (BUG)");

  if (options.json &&
      !report.WriteTo(JsonPathFor(figure, options), figure)) {
    return 1;
  }
  return counts_agree ? 0 : 2;
}

}  // namespace gogreen::bench
