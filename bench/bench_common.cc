#include "bench/bench_common.h"

#include <cinttypes>
#include <cstdio>

#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "core/disk_recycle.h"
#include "fpm/miner.h"
#include "fpm/partition.h"
#include "util/env.h"
#include "util/timer.h"

namespace gogreen::bench {

namespace {

using core::CompressedDb;
using core::CompressionStats;
using core::CompressionStrategy;
using core::MatcherKind;
using core::RecycleAlgo;
using data::DatasetId;
using data::DatasetSpec;
using fpm::PatternSet;
using fpm::TransactionDb;

struct FamilyInfo {
  const char* baseline_name;
  const char* mcp_name;
  const char* mlp_name;
  fpm::MinerKind baseline;
  RecycleAlgo recycler;
};

FamilyInfo InfoOf(AlgoFamily family) {
  switch (family) {
    case AlgoFamily::kHMine:
      return {"H-Mine", "HM-MCP", "HM-MLP", fpm::MinerKind::kHMine,
              RecycleAlgo::kHMine};
    case AlgoFamily::kFpGrowth:
      return {"FP", "FP-MCP", "FP-MLP", fpm::MinerKind::kFpGrowth,
              RecycleAlgo::kFpGrowth};
    case AlgoFamily::kTreeProjection:
      return {"TP", "TP-MCP", "TP-MLP", fpm::MinerKind::kTreeProjection,
              RecycleAlgo::kTreeProjection};
  }
  return {"?", "?", "?", fpm::MinerKind::kHMine, RecycleAlgo::kHMine};
}

/// Runs a miner and returns (seconds, #patterns); prints and exits on error.
template <typename Fn>
std::pair<double, size_t> TimeMine(Fn&& fn) {
  Timer timer;
  auto result = fn();
  const double secs = timer.ElapsedSeconds();
  if (!result.ok()) {
    std::fprintf(stderr, "mining failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return {secs, result.value().size()};
}

}  // namespace

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds < 0.01) {
    std::snprintf(buf, sizeof(buf), "%.4fs", seconds);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  }
  return buf;
}

void PrintHeader(const char* figure, const char* title) {
  std::printf("== %s: %s ==\n", figure, title);
}

int RunRuntimeFigure(const char* figure, DatasetId dataset, AlgoFamily family,
                     bool log_scale_note) {
  const DatasetSpec& spec = data::GetDatasetSpec(dataset);
  const FamilyInfo info = InfoOf(family);
  const BenchScale scale = GetBenchScale();

  char title[256];
  std::snprintf(title, sizeof(title),
                "%s (%s) — %s family, runtime vs xi_new%s", spec.paper_name,
                spec.name, info.baseline_name,
                log_scale_note ? " [paper plots log scale]" : "");
  PrintHeader(figure, title);

  auto db_result = data::MakeDataset(dataset, scale);
  if (!db_result.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 db_result.status().ToString().c_str());
    return 1;
  }
  const TransactionDb db = std::move(db_result).value();

  // Phase 0: the earlier mining round whose output we recycle.
  const uint64_t old_sup =
      fpm::AbsoluteSupport(spec.xi_old, db.NumTransactions());
  Timer timer;
  auto base_miner = fpm::CreateMiner(info.baseline);
  auto fp_old_result = base_miner->Mine(db, old_sup);
  if (!fp_old_result.ok()) {
    std::fprintf(stderr, "xi_old mine: %s\n",
                 fp_old_result.status().ToString().c_str());
    return 1;
  }
  const PatternSet fp_old = std::move(fp_old_result).value();
  const double old_mine_secs = timer.ElapsedSeconds();

  // Phase 1: compression with both strategies.
  CompressionStats mcp_stats;
  CompressionStats mlp_stats;
  auto mcp_result = core::CompressDatabase(
      db, fp_old, {CompressionStrategy::kMcp, MatcherKind::kAuto},
      &mcp_stats);
  auto mlp_result = core::CompressDatabase(
      db, fp_old, {CompressionStrategy::kMlp, MatcherKind::kAuto},
      &mlp_stats);
  if (!mcp_result.ok() || !mlp_result.ok()) {
    std::fprintf(stderr, "compression failed\n");
    return 1;
  }
  const CompressedDb cdb_mcp = std::move(mcp_result).value();
  const CompressedDb cdb_mlp = std::move(mlp_result).value();

  std::printf(
      "dataset=%s scale=%s tuples=%zu avg_len=%.1f xi_old=%.4g%% "
      "(mined in %s, %zu patterns, max len %zu)\n",
      spec.name, BenchScaleName(scale), db.NumTransactions(), db.AvgLength(),
      spec.xi_old * 100, FormatSeconds(old_mine_secs).c_str(), fp_old.size(),
      fp_old.MaxLength());
  std::printf(
      "compression: MCP ratio=%.3f time=%s | MLP ratio=%.3f time=%s\n",
      mcp_stats.Ratio(), FormatSeconds(mcp_stats.elapsed_seconds).c_str(),
      mlp_stats.Ratio(), FormatSeconds(mlp_stats.elapsed_seconds).c_str());
  std::printf("%-9s %12s %12s %12s %11s %11s %10s\n", "xi_new",
              info.baseline_name, info.mcp_name, info.mlp_name,
              "speedup-MCP", "speedup-MLP", "#patterns");

  bool counts_agree = true;
  for (const double xi : spec.xi_new_sweep) {
    const uint64_t sup = fpm::AbsoluteSupport(xi, db.NumTransactions());

    auto [base_secs, base_count] = TimeMine([&] {
      auto miner = fpm::CreateMiner(info.baseline);
      return miner->Mine(db, sup);
    });
    auto [mcp_secs, mcp_count] = TimeMine([&] {
      auto miner = core::CreateCompressedMiner(info.recycler);
      return miner->MineCompressed(cdb_mcp, sup);
    });
    auto [mlp_secs, mlp_count] = TimeMine([&] {
      auto miner = core::CreateCompressedMiner(info.recycler);
      return miner->MineCompressed(cdb_mlp, sup);
    });

    if (base_count != mcp_count || base_count != mlp_count) {
      counts_agree = false;
    }
    std::printf("%-8.4g%% %12s %12s %12s %10.1fx %10.1fx %10zu\n", xi * 100,
                FormatSeconds(base_secs).c_str(),
                FormatSeconds(mcp_secs).c_str(),
                FormatSeconds(mlp_secs).c_str(),
                mcp_secs > 0 ? base_secs / mcp_secs : 0.0,
                mlp_secs > 0 ? base_secs / mlp_secs : 0.0, base_count);
    std::fflush(stdout);
  }
  std::printf("result check: %s\n\n",
              counts_agree ? "pattern counts agree across all variants"
                           : "MISMATCH in pattern counts (BUG)");
  return counts_agree ? 0 : 2;
}

int RunMemoryLimitFigure(const char* figure, DatasetId dataset,
                         bool log_scale_note) {
  const DatasetSpec& spec = data::GetDatasetSpec(dataset);
  const BenchScale scale = GetBenchScale();

  char title[256];
  std::snprintf(title, sizeof(title),
                "%s (%s) — memory-limited H-Mine vs HM-MCP%s",
                spec.paper_name, spec.name,
                log_scale_note ? " [paper plots log scale]" : "");
  PrintHeader(figure, title);

  auto db_result = data::MakeDataset(dataset, scale);
  if (!db_result.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 db_result.status().ToString().c_str());
    return 1;
  }
  const TransactionDb db = std::move(db_result).value();

  // The paper limits memory to 4MB / 8MB against full-size datasets; scale
  // the budgets with the dataset so the limit still bites.
  const double fraction =
      static_cast<double>(data::DatasetTransactions(dataset, scale)) /
      static_cast<double>(
          data::DatasetTransactions(dataset, BenchScale::kFull));
  const size_t limit_lo = static_cast<size_t>(4.0 * (1 << 20) * fraction);
  const size_t limit_hi = static_cast<size_t>(8.0 * (1 << 20) * fraction);

  const uint64_t old_sup =
      fpm::AbsoluteSupport(spec.xi_old, db.NumTransactions());
  auto fp_miner = fpm::CreateMiner(fpm::MinerKind::kHMine);
  auto fp_old = fp_miner->Mine(db, old_sup);
  if (!fp_old.ok()) {
    std::fprintf(stderr, "xi_old mine failed\n");
    return 1;
  }
  auto cdb_result = core::CompressDatabase(
      db, fp_old.value(), {CompressionStrategy::kMcp, MatcherKind::kAuto});
  if (!cdb_result.ok()) {
    std::fprintf(stderr, "compression failed\n");
    return 1;
  }
  const CompressedDb cdb = std::move(cdb_result).value();

  std::printf(
      "dataset=%s scale=%s tuples=%zu xi_old=%.4g%% limits=%.2fMB/%.2fMB "
      "(paper: 4MB/8MB at full scale)\n",
      spec.name, BenchScaleName(scale), db.NumTransactions(),
      spec.xi_old * 100, static_cast<double>(limit_lo) / (1 << 20),
      static_cast<double>(limit_hi) / (1 << 20));
  std::printf("%-9s %14s %14s %14s %14s %10s\n", "xi_new", "H-Mine(loM)",
              "HM-MCP(loM)", "H-Mine(hiM)", "HM-MCP(hiM)", "#patterns");

  const std::string tmp = TempDir();
  bool counts_agree = true;
  for (const double xi : spec.xi_new_sweep) {
    const uint64_t sup = fpm::AbsoluteSupport(xi, db.NumTransactions());
    auto [hm_lo, c1] = TimeMine(
        [&] { return fpm::MineHMineMemoryLimited(db, sup, limit_lo, tmp); });
    auto [rc_lo, c2] = TimeMine([&] {
      return core::MineRecycleHMMemoryLimited(cdb, sup, limit_lo, tmp);
    });
    auto [hm_hi, c3] = TimeMine(
        [&] { return fpm::MineHMineMemoryLimited(db, sup, limit_hi, tmp); });
    auto [rc_hi, c4] = TimeMine([&] {
      return core::MineRecycleHMMemoryLimited(cdb, sup, limit_hi, tmp);
    });
    if (c1 != c2 || c1 != c3 || c1 != c4) counts_agree = false;
    std::printf("%-8.4g%% %14s %14s %14s %14s %10zu\n", xi * 100,
                FormatSeconds(hm_lo).c_str(), FormatSeconds(rc_lo).c_str(),
                FormatSeconds(hm_hi).c_str(), FormatSeconds(rc_hi).c_str(),
                c1);
    std::fflush(stdout);
  }
  std::printf("result check: %s\n\n",
              counts_agree ? "pattern counts agree across all variants"
                           : "MISMATCH in pattern counts (BUG)");
  return counts_agree ? 0 : 2;
}

}  // namespace gogreen::bench
