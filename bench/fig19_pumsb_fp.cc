// Figure 19 of the paper: see DESIGN.md experiment index.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return gogreen::bench::RunRuntimeFigure(
      "Figure 19", gogreen::data::DatasetId::kPumsbSub,
      gogreen::bench::AlgoFamily::kFpGrowth, false,
      gogreen::bench::ParseBenchOptions(argc, argv));
}
