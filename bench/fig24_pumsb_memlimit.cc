// Figure 24 of the paper (memory-limited mining, Section 5.3).

#include "bench/bench_common.h"

int main() {
  return gogreen::bench::RunMemoryLimitFigure(
      "Figure 24", gogreen::data::DatasetId::kPumsbSub, true);
}
