// Figure 24 of the paper (memory-limited mining, Section 5.3).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return gogreen::bench::RunMemoryLimitFigure(
      "Figure 24", gogreen::data::DatasetId::kPumsbSub, true,
      gogreen::bench::ParseBenchOptions(argc, argv));
}
