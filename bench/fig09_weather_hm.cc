// Figure 9 of the paper: see DESIGN.md experiment index.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return gogreen::bench::RunRuntimeFigure(
      "Figure 9", gogreen::data::DatasetId::kWeatherSub,
      gogreen::bench::AlgoFamily::kHMine, false,
      gogreen::bench::ParseBenchOptions(argc, argv));
}
