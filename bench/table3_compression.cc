// Table 3 of the paper: dataset properties and compression statistics.
// For each dataset: tuple count, average tuple length, item count, xi_old,
// the number and maximal length of the recycled patterns, and per strategy
// (MCP / MLP) the compression run time with I/O, the pipeline (in-memory)
// run time, and the compression ratio R = Sc / So.
//
// "Run time (I/O)" reproduces the paper's full-pipeline measurement:
// read the dataset from a .dat file, compress it, and write the compressed
// image to disk. "Run time (pipeline)" is the in-memory compression only
// (the paper's column that deducts I/O, since compression can be fused into
// the mining projection pass).

#include <cstdio>
#include <string>

#include "core/compressor.h"
#include "data/dat_io.h"
#include "data/datasets.h"
#include "fpm/miner.h"
#include "util/env.h"
#include "util/timer.h"

namespace {

using gogreen::BenchScale;
using gogreen::Timer;
using gogreen::core::CompressionStats;
using gogreen::core::CompressionStrategy;
using gogreen::core::MatcherKind;

struct StrategyResult {
  double io_seconds = 0;
  double pipeline_seconds = 0;
  double ratio = 1;
};

StrategyResult RunStrategy(const gogreen::fpm::TransactionDb& db,
                           const gogreen::fpm::PatternSet& fp,
                           CompressionStrategy strategy,
                           const std::string& dat_path,
                           const std::string& cdb_path) {
  StrategyResult out;

  // Pipeline time: in-memory compression only.
  CompressionStats stats;
  auto cdb = gogreen::core::CompressDatabase(
      db, fp, {strategy, MatcherKind::kAuto}, &stats);
  if (!cdb.ok()) {
    std::fprintf(stderr, "compress failed: %s\n",
                 cdb.status().ToString().c_str());
    std::exit(1);
  }
  out.pipeline_seconds = stats.elapsed_seconds;
  out.ratio = stats.Ratio();

  // I/O time: read the raw data from disk, compress, write the image.
  Timer timer;
  auto loaded = gogreen::data::ReadDatFile(dat_path);
  if (!loaded.ok()) std::exit(1);
  CompressionStats io_stats;
  auto cdb2 = gogreen::core::CompressDatabase(
      *loaded, fp, {strategy, MatcherKind::kAuto}, &io_stats);
  if (!cdb2.ok()) std::exit(1);
  if (!cdb2->WriteTo(cdb_path).ok()) std::exit(1);
  out.io_seconds = timer.ElapsedSeconds();
  std::remove(cdb_path.c_str());
  return out;
}

}  // namespace

int main() {
  const BenchScale scale = gogreen::GetBenchScale();
  std::printf("== Table 3: dataset properties and compression statistics "
              "(scale=%s) ==\n",
              gogreen::BenchScaleName(scale));
  std::printf("%-13s %9s %8s %7s %7s %9s %7s | %9s %9s %6s | %9s %9s %6s\n",
              "dataset", "#tuples", "avg.len", "#items", "xi_old", "#pattern",
              "max.len", "MCP-io", "MCP-pipe", "R-MCP", "MLP-io", "MLP-pipe",
              "R-MLP");

  for (gogreen::data::DatasetId id : gogreen::data::kAllDatasets) {
    const auto& spec = gogreen::data::GetDatasetSpec(id);
    auto db_result = gogreen::data::MakeDataset(id, scale);
    if (!db_result.ok()) {
      std::fprintf(stderr, "dataset %s: %s\n", spec.name,
                   db_result.status().ToString().c_str());
      return 1;
    }
    const gogreen::fpm::TransactionDb db = std::move(db_result).value();

    const uint64_t old_sup =
        gogreen::fpm::AbsoluteSupport(spec.xi_old, db.NumTransactions());
    auto miner = gogreen::fpm::CreateMiner(gogreen::fpm::MinerKind::kFpGrowth);
    auto fp = miner->Mine(db, old_sup);
    if (!fp.ok()) return 1;

    // Stage the raw dataset on disk for the I/O measurement.
    const std::string dat_path =
        gogreen::TempDir() + "/gogreen_t3_" + spec.name + ".dat";
    const std::string cdb_path =
        gogreen::TempDir() + "/gogreen_t3_" + spec.name + ".cdb";
    if (!gogreen::data::WriteDatFile(db, dat_path).ok()) return 1;

    const StrategyResult mcp =
        RunStrategy(db, fp.value(), CompressionStrategy::kMcp, dat_path,
                    cdb_path);
    const StrategyResult mlp =
        RunStrategy(db, fp.value(), CompressionStrategy::kMlp, dat_path,
                    cdb_path);
    std::remove(dat_path.c_str());

    std::printf(
        "%-13s %9zu %8.1f %7zu %6.4g%% %9zu %7zu | %8.2fs %8.2fs %6.3f | "
        "%8.2fs %8.2fs %6.3f\n",
        spec.name, db.NumTransactions(), db.AvgLength(),
        db.NumDistinctItems(), spec.xi_old * 100, fp->size(),
        fp->MaxLength(), mcp.io_seconds, mcp.pipeline_seconds, mcp.ratio,
        mlp.io_seconds, mlp.pipeline_seconds, mlp.ratio);
    std::fflush(stdout);
  }
  std::printf("\nExpectations from the paper: pipeline << mining time; "
              "R(MLP) <= R(MCP); dense sets compress far better than "
              "sparse.\n");
  return 0;
}
