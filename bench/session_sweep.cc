// Serving-layer benchmark (not a paper figure): drives a MiningService
// through each dataset's relax-support sweep the way a session would —
// mine at xi_old, relax through the xi_new sweep (recycle chain), re-query
// xi_old (exact hit), then query between two cached thresholds
// (filter-down) — and reports the per-route timings. This is the service
// shape of the paper's Figures 9-20 sweeps: the same thresholds, but every
// answer after the first is served from the pattern store.
//
// `--json [path]` additionally writes BENCH_session_sweep.json with one row
// per request: dataset, support, route, wall seconds, compression seconds,
// compression ratio, and the pattern count.
//
// `--via-socket` runs the identical sweep through the wire: an in-process
// daemon (net::Server) on a unix socket, every request a framed
// net::WireRequest from a net::Client. The route/pattern columns must
// match the direct mode exactly; the timing delta IS the protocol
// overhead, so committing both modes' JSON makes the wire tax visible in
// the perf trajectory.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/seed_selection.h"
#include "data/datasets.h"
#include "fpm/miner.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "serve/mining_service.h"
#include "util/env.h"
#include "util/status.h"

namespace gogreen::bench {
namespace {

struct SweepRow {
  std::string dataset;
  double xi = 0.0;
  uint64_t min_support = 0;
  std::string route;
  double seconds = 0.0;
  double compress_seconds = 0.0;
  double ratio = 1.0;
  uint64_t patterns = 0;
};

/// One sweep target: either the service directly (in-process) or the same
/// service behind a daemon socket (`--via-socket`).
struct SweepTarget {
  serve::MiningService* service = nullptr;
  net::Client* client = nullptr;  ///< Non-null in socket mode.
};

Status ServeOne(const SweepTarget& target, double xi, uint64_t min_support,
                std::vector<SweepRow>* rows) {
  SweepRow row;
  row.dataset = target.service->dataset_id();
  row.xi = xi;
  row.min_support = min_support;
  if (target.client != nullptr) {
    net::WireRequest request;
    request.verb = net::Verb::kMine;
    request.support = static_cast<double>(min_support);
    GOGREEN_ASSIGN_OR_RETURN(const net::WireResponse resp,
                             target.client->Call(request));
    GOGREEN_RETURN_NOT_OK(resp.ToStatus());
    row.route = resp.route;
    row.seconds = resp.seconds;
    row.compress_seconds = resp.compress_seconds;
    row.ratio = resp.compression_ratio;
    row.patterns = resp.patterns;
  } else {
    serve::ServeStats stats;
    GOGREEN_RETURN_NOT_OK(
        target.service->Mine(fpm::MineRequest::At(min_support), &stats)
            .status());
    row.route = core::SeedRouteName(stats.route);
    row.seconds = stats.seconds;
    row.compress_seconds = stats.compress_seconds;
    row.ratio = stats.compression_ratio;
    row.patterns = stats.patterns_returned;
  }
  rows->push_back(row);
  std::printf("  %-14s xi=%-7.4g support=%-8" PRIu64
              " route=%-11s patterns=%-8" PRIu64 " %s\n",
              row.dataset.c_str(), xi, min_support, row.route.c_str(),
              row.patterns, FormatSeconds(row.seconds).c_str());
  return Status::OK();
}

Status SweepDataset(data::DatasetId id, bool via_socket,
                    std::vector<SweepRow>* rows) {
  const data::DatasetSpec& spec = data::GetDatasetSpec(id);
  GOGREEN_ASSIGN_OR_RETURN(fpm::TransactionDb db,
                           data::MakeDataset(id, GetBenchScale()));
  const size_t n = db.NumTransactions();
  serve::MiningService service(std::move(db), spec.name);

  // Socket mode: stand up a daemon over this service and route every
  // request through a real framed connection. The temp dir holding the
  // socket is declared first so it outlives the server's shutdown.
  std::optional<ScopedTempDir> dir;
  std::unique_ptr<net::Server> server;
  std::unique_ptr<net::Client> client;
  if (via_socket) {
    auto dir_or = ScopedTempDir::Create(TempDir(), "gg_sweep_");
    GOGREEN_RETURN_NOT_OK(dir_or.status());
    dir.emplace(std::move(dir_or.value()));
    net::ServerOptions options;
    options.unix_path = dir->path() + "/gg.sock";
    server = std::make_unique<net::Server>(service, nullptr, options);
    GOGREEN_RETURN_NOT_OK(server->Start());
    GOGREEN_ASSIGN_OR_RETURN(net::Client connected,
                             net::Client::ConnectUnix(options.unix_path));
    client = std::make_unique<net::Client>(std::move(connected));
  }
  const SweepTarget target{&service, client.get()};

  // The paper's sweep as a session: tight first, then relax step by step.
  GOGREEN_RETURN_NOT_OK(
      ServeOne(target, spec.xi_old, fpm::AbsoluteSupport(spec.xi_old, n),
               rows));
  for (const double xi : spec.xi_new_sweep) {
    GOGREEN_RETURN_NOT_OK(
        ServeOne(target, xi, fpm::AbsoluteSupport(xi, n), rows));
  }
  // Re-query the first threshold: an exact hit off the store.
  GOGREEN_RETURN_NOT_OK(
      ServeOne(target, spec.xi_old, fpm::AbsoluteSupport(spec.xi_old, n),
               rows));
  // A support between the two tightest cached thresholds: filter-down.
  const uint64_t hi = fpm::AbsoluteSupport(spec.xi_old, n);
  const uint64_t lo = fpm::AbsoluteSupport(spec.xi_new_sweep.front(), n);
  const uint64_t mid = (hi + lo) / 2;
  if (mid > lo && mid < hi) {
    GOGREEN_RETURN_NOT_OK(
        ServeOne(target, static_cast<double>(mid) / static_cast<double>(n),
                 mid, rows));
  }
  if (server != nullptr) server->Stop();
  return Status::OK();
}

std::string RowJson(const SweepRow& row) {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "{\"dataset\":\"%s\",\"xi\":%.9g,\"min_support\":%" PRIu64
                ",\"route\":\"%s\",\"seconds\":%.9g,"
                "\"compress_seconds\":%.9g,\"compression_ratio\":%.6g,"
                "\"patterns\":%" PRIu64 "}",
                row.dataset.c_str(), row.xi, row.min_support,
                row.route.c_str(), row.seconds, row.compress_seconds,
                row.ratio, row.patterns);
  return buf;
}

int RunSessionSweep(const BenchOptions& options, bool via_socket) {
  PrintHeader("session sweep",
              via_socket
                  ? "Per-route service timings over the paper's "
                    "relax-support sweeps (framed requests over a unix "
                    "socket daemon)"
                  : "Per-route service timings over the paper's "
                    "relax-support sweeps");
  std::vector<SweepRow> rows;
  for (const data::DatasetId id : data::kAllDatasets) {
    const Status status = SweepDataset(id, via_socket, &rows);
    if (!status.ok()) {
      std::fprintf(stderr, "session sweep failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
  }

  // Per-route aggregate: the serving story in four numbers.
  struct RouteAgg {
    const char* route;
    uint64_t requests = 0;
    double seconds = 0.0;
  };
  RouteAgg aggs[] = {{"none"}, {"recycle"}, {"filter-down"}, {"exact"}};
  for (const SweepRow& row : rows) {
    for (RouteAgg& agg : aggs) {
      if (row.route == std::string(agg.route)) {
        ++agg.requests;
        agg.seconds += row.seconds;
      }
    }
  }
  std::printf("\nper-route totals:\n");
  for (const RouteAgg& agg : aggs) {
    std::printf("  %-11s %3" PRIu64 " requests  %s\n", agg.route,
                agg.requests, FormatSeconds(agg.seconds).c_str());
  }

  if (options.json) {
    const std::string path = options.json_path.empty()
                                 ? "BENCH_session_sweep.json"
                                 : options.json_path;
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      return 1;
    }
    std::string doc = "{\"figure\":\"session sweep\",\"scale\":\"";
    doc += BenchScaleName(GetBenchScale());
    doc += "\",\"rows\":[";
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) doc += ',';
      doc += RowJson(rows[i]);
    }
    doc += "]}";
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
    std::fclose(f);
    if (!ok) return 1;
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace gogreen::bench

int main(int argc, char** argv) {
  bool via_socket = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--via-socket") == 0) via_socket = true;
  }
  return gogreen::bench::RunSessionSweep(
      gogreen::bench::ParseBenchOptions(argc, argv), via_socket);
}
