// Figure 22 of the paper (memory-limited mining, Section 5.3).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return gogreen::bench::RunMemoryLimitFigure(
      "Figure 22", gogreen::data::DatasetId::kForestSub, false,
      gogreen::bench::ParseBenchOptions(argc, argv));
}
