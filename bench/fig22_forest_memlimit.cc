// Figure 22 of the paper (memory-limited mining, Section 5.3).

#include "bench/bench_common.h"

int main() {
  return gogreen::bench::RunMemoryLimitFigure(
      "Figure 22", gogreen::data::DatasetId::kForestSub, false);
}
