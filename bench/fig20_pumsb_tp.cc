// Figure 20 of the paper: see DESIGN.md experiment index.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return gogreen::bench::RunRuntimeFigure(
      "Figure 20", gogreen::data::DatasetId::kPumsbSub,
      gogreen::bench::AlgoFamily::kTreeProjection, true,
      gogreen::bench::ParseBenchOptions(argc, argv));
}
