// Figure 14 of the paper: see DESIGN.md experiment index.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return gogreen::bench::RunRuntimeFigure(
      "Figure 14", gogreen::data::DatasetId::kForestSub,
      gogreen::bench::AlgoFamily::kTreeProjection, false,
      gogreen::bench::ParseBenchOptions(argc, argv));
}
