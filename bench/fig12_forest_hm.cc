// Figure 12 of the paper: see DESIGN.md experiment index.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return gogreen::bench::RunRuntimeFigure(
      "Figure 12", gogreen::data::DatasetId::kForestSub,
      gogreen::bench::AlgoFamily::kHMine, false,
      gogreen::bench::ParseBenchOptions(argc, argv));
}
