// Figure 13 of the paper: see DESIGN.md experiment index.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return gogreen::bench::RunRuntimeFigure(
      "Figure 13", gogreen::data::DatasetId::kForestSub,
      gogreen::bench::AlgoFamily::kFpGrowth, false,
      gogreen::bench::ParseBenchOptions(argc, argv));
}
