// Shared harness for the per-figure benchmark binaries. Each binary
// reproduces one table or figure of the paper; the functions here implement
// the common experiment shapes (runtime-vs-support sweeps, memory-limited
// sweeps) and the report formatting.
//
// Every figure binary accepts `--json [path]`: in addition to the human
// table it then writes one machine-readable `BENCH_<figure>.json` document
// (dataset, xi_old, per-xi_new rows with per-algorithm wall seconds,
// span-attributed phase seconds, and work counters from the metric
// registry), so the perf trajectory across PRs can be tracked
// automatically.

#ifndef GOGREEN_BENCH_BENCH_COMMON_H_
#define GOGREEN_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/datasets.h"
#include "util/status.h"

namespace gogreen::bench {

/// Which algorithm family a runtime figure compares.
enum class AlgoFamily {
  kHMine,           ///< H-Mine vs HM-MCP vs HM-MLP (Figs. 9/12/15/18).
  kFpGrowth,        ///< FP vs FP-MCP vs FP-MLP (Figs. 10/13/16/19).
  kTreeProjection,  ///< TP vs TP-MCP vs TP-MLP (Figs. 11/14/17/20).
};

/// Output options shared by the figure binaries.
struct BenchOptions {
  bool json = false;      ///< Also write the machine-readable document.
  std::string json_path;  ///< Empty: "BENCH_<sanitized figure>.json".
  /// Thread counts to sweep (`--threads 1,2,4`). Empty: leave the global
  /// pool alone (GOGREEN_THREADS or hardware default). With more than one
  /// entry the runtime figures repeat their measured sweep once per count
  /// and every JSON row carries its own "threads" field; the mined output
  /// is identical at any count, only the timings change.
  std::vector<unsigned> threads;
};

/// Parses the common bench flags (`--json [path]`, `--threads n[,n...]`);
/// unknown arguments are ignored so figure binaries stay
/// forward-compatible.
BenchOptions ParseBenchOptions(int argc, char** argv);

/// Reproduces one runtime-vs-xi_new figure: mines FP at the dataset's
/// xi_old, compresses with MCP and MLP, then for each xi_new in the sweep
/// runs the family's non-recycling baseline and both recycling variants,
/// printing one row per support level. Phase timings (compress vs. mine)
/// are attributed from the obs trace spans, matching the paper's
/// Phase I/II split. Returns non-zero on error.
int RunRuntimeFigure(const char* figure, data::DatasetId dataset,
                     AlgoFamily family, bool log_scale_note,
                     const BenchOptions& options = {});

/// Reproduces one memory-limited figure (Figs. 21-24): H-Mine vs HM-MCP,
/// both under the two memory budgets of Section 5.3 (4MB / 8MB at paper
/// scale, proportionally smaller at reduced bench scales).
int RunMemoryLimitFigure(const char* figure, data::DatasetId dataset,
                         bool log_scale_note,
                         const BenchOptions& options = {});

/// Thread-scaling experiment (not a paper figure): fixes xi_new at the
/// hardest (lowest) support of the dataset's sweep and measures the
/// family's baseline miner and both recycling variants at each thread
/// count (default 1,2,4,8; override with `--threads`). Reports speedup
/// relative to the first count and cross-checks that pattern counts are
/// identical at every count. Returns non-zero on error or mismatch.
int RunThreadScalingFigure(const char* figure, data::DatasetId dataset,
                           AlgoFamily family,
                           const BenchOptions& options = {});

/// Formats seconds with appropriate precision ("0.123s").
std::string FormatSeconds(double seconds);

/// Prints the standard report header for a figure binary.
void PrintHeader(const char* figure, const char* title);

}  // namespace gogreen::bench

#endif  // GOGREEN_BENCH_BENCH_COMMON_H_
