// Figure 21 of the paper (memory-limited mining, Section 5.3).

#include "bench/bench_common.h"

int main() {
  return gogreen::bench::RunMemoryLimitFigure(
      "Figure 21", gogreen::data::DatasetId::kWeatherSub, false);
}
