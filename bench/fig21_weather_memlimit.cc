// Figure 21 of the paper (memory-limited mining, Section 5.3).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return gogreen::bench::RunMemoryLimitFigure(
      "Figure 21", gogreen::data::DatasetId::kWeatherSub, false,
      gogreen::bench::ParseBenchOptions(argc, argv));
}
