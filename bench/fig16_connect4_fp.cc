// Figure 16 of the paper: see DESIGN.md experiment index.

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return gogreen::bench::RunRuntimeFigure(
      "Figure 16", gogreen::data::DatasetId::kConnect4Sub,
      gogreen::bench::AlgoFamily::kFpGrowth, false,
      gogreen::bench::ParseBenchOptions(argc, argv));
}
