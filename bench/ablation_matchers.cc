// Ablation: the compressor's pattern-matching strategy (DESIGN.md §4).
// Compares the linear utility-order scan against the inverted-index
// (rarest-item anchor) matcher on all four datasets. Expectation: the
// inverted index wins on sparse data (most patterns share no item with a
// given tuple), the linear scan on dense data (the first few patterns
// cover almost every tuple).

#include <cstdio>

#include "core/compressor.h"
#include "data/datasets.h"
#include "fpm/miner.h"
#include "util/env.h"

int main() {
  using gogreen::core::CompressionStats;
  using gogreen::core::CompressionStrategy;
  using gogreen::core::MatcherKind;

  const gogreen::BenchScale scale = gogreen::GetBenchScale();
  std::printf("== Ablation: compressor matcher (linear vs inverted-index, "
              "MCP, scale=%s) ==\n",
              gogreen::BenchScaleName(scale));
  std::printf("%-13s %10s %12s %14s %10s\n", "dataset", "#patterns",
              "linear", "inverted-idx", "winner");

  for (gogreen::data::DatasetId id : gogreen::data::kAllDatasets) {
    const auto& spec = gogreen::data::GetDatasetSpec(id);
    auto db = gogreen::data::MakeDataset(id, scale);
    if (!db.ok()) return 1;
    const uint64_t old_sup =
        gogreen::fpm::AbsoluteSupport(spec.xi_old, db->NumTransactions());
    auto miner = gogreen::fpm::CreateMiner(gogreen::fpm::MinerKind::kFpGrowth);
    auto fp = miner->Mine(*db, old_sup);
    if (!fp.ok()) return 1;

    CompressionStats linear;
    CompressionStats inverted;
    if (!gogreen::core::CompressDatabase(
             *db, fp.value(),
             {CompressionStrategy::kMcp, MatcherKind::kLinear}, &linear)
             .ok() ||
        !gogreen::core::CompressDatabase(
             *db, fp.value(),
             {CompressionStrategy::kMcp, MatcherKind::kInvertedIndex},
             &inverted)
             .ok()) {
      return 1;
    }
    std::printf("%-13s %10zu %11.3fs %13.3fs %10s\n", spec.name, fp->size(),
                linear.elapsed_seconds, inverted.elapsed_seconds,
                linear.elapsed_seconds <= inverted.elapsed_seconds
                    ? "linear"
                    : "inverted");
    std::fflush(stdout);
  }
  return 0;
}
