// Figure 23 of the paper (memory-limited mining, Section 5.3).

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  return gogreen::bench::RunMemoryLimitFigure(
      "Figure 23", gogreen::data::DatasetId::kConnect4Sub, true,
      gogreen::bench::ParseBenchOptions(argc, argv));
}
