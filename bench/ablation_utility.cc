// Ablation: how many recycled patterns are actually needed? (DESIGN.md §4)
// Compresses each dataset with only the top-K patterns of the MCP utility
// ranking (K = 1, 10, 100, all) and measures Recycle-HM time at the lowest
// xi_new of the sweep. Expectation: a handful of high-utility patterns
// captures most of the saving — the utility function, not pattern volume,
// is what matters (the paper's MCP-vs-MLP conclusion restated).

#include <algorithm>
#include <cstdio>

#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "core/utility.h"
#include "data/datasets.h"
#include "fpm/miner.h"
#include "util/env.h"
#include "util/timer.h"

int main() {
  using gogreen::Timer;
  using gogreen::core::CompressionStrategy;
  using gogreen::core::MatcherKind;
  using gogreen::core::RecycleAlgo;
  using gogreen::fpm::PatternSet;

  const gogreen::BenchScale scale = gogreen::GetBenchScale();
  std::printf("== Ablation: recycling only the top-K patterns by MCP "
              "utility (Recycle-HM at lowest xi_new, scale=%s) ==\n",
              gogreen::BenchScaleName(scale));
  std::printf("%-13s %8s %10s %10s %10s %10s %12s\n", "dataset", "baseline",
              "K=1", "K=10", "K=100", "K=all", "ratio(K=all)");

  for (gogreen::data::DatasetId id : gogreen::data::kAllDatasets) {
    const auto& spec = gogreen::data::GetDatasetSpec(id);
    auto db = gogreen::data::MakeDataset(id, scale);
    if (!db.ok()) return 1;
    const uint64_t old_sup =
        gogreen::fpm::AbsoluteSupport(spec.xi_old, db->NumTransactions());
    const uint64_t new_sup = gogreen::fpm::AbsoluteSupport(
        spec.xi_new_sweep.back(), db->NumTransactions());

    auto miner = gogreen::fpm::CreateMiner(gogreen::fpm::MinerKind::kHMine);
    auto fp = miner->Mine(*db, old_sup);
    if (!fp.ok()) return 1;
    const std::vector<size_t> ranking = gogreen::core::RankPatternsByUtility(
        fp.value(), CompressionStrategy::kMcp, db->NumTransactions());

    // Non-recycling baseline.
    Timer timer;
    auto base_miner =
        gogreen::fpm::CreateMiner(gogreen::fpm::MinerKind::kHMine);
    if (!base_miner->Mine(*db, new_sup).ok()) return 1;
    const double baseline = timer.ElapsedSeconds();

    double times[4] = {0, 0, 0, 0};
    double full_ratio = 1.0;
    const size_t kvals[4] = {1, 10, 100, fp->size()};
    for (int ki = 0; ki < 4; ++ki) {
      PatternSet top;
      for (size_t i = 0; i < std::min(kvals[ki], ranking.size()); ++i) {
        top.Add(fp.value()[ranking[i]]);
      }
      gogreen::core::CompressionStats stats;
      auto cdb = gogreen::core::CompressDatabase(
          *db, top, {CompressionStrategy::kMcp, MatcherKind::kAuto},
          &stats);
      if (!cdb.ok()) return 1;
      if (ki == 3) full_ratio = stats.Ratio();
      Timer mine_timer;
      auto rm = gogreen::core::CreateCompressedMiner(RecycleAlgo::kHMine);
      if (!rm->MineCompressed(*cdb, new_sup).ok()) return 1;
      times[ki] = mine_timer.ElapsedSeconds();
    }
    std::printf("%-13s %7.2fs %9.2fs %9.2fs %9.2fs %9.2fs %12.3f\n",
                spec.name, baseline, times[0], times[1], times[2], times[3],
                full_ratio);
    std::fflush(stdout);
  }
  return 0;
}
