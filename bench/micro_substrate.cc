// google-benchmark microbenchmarks for the substrate hot paths: F-list
// construction, transaction rank-encoding, trie subset counting, slice
// projection, and the two compressor matchers.

#include <benchmark/benchmark.h>

#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "core/slice_db.h"
#include "data/quest_gen.h"
#include "fpm/flist.h"
#include "fpm/miner.h"
#include "fpm/pattern_trie.h"

namespace {

using gogreen::core::CompressionStrategy;
using gogreen::core::MatcherKind;
using gogreen::data::GenerateQuest;
using gogreen::data::QuestConfig;
using gogreen::fpm::FList;
using gogreen::fpm::PatternSet;
using gogreen::fpm::PatternTrie;
using gogreen::fpm::TransactionDb;

const TransactionDb& BenchDb() {
  static const TransactionDb* db = [] {
    QuestConfig cfg;
    cfg.num_transactions = 20000;
    cfg.avg_transaction_len = 12.0;
    cfg.num_items = 2000;
    cfg.num_patterns = 100;
    cfg.weight_skew = 2.0;
    cfg.seed = 99;
    auto result = GenerateQuest(cfg);
    // gogreen-lint: allow(naked-new): intentionally leaked bench fixture
    return new TransactionDb(std::move(result).value());
  }();
  return *db;
}

const PatternSet& BenchFp() {
  static const PatternSet* fp = [] {
    auto miner =
        gogreen::fpm::CreateMiner(gogreen::fpm::MinerKind::kFpGrowth);
    auto result = miner->Mine(BenchDb(), 400);
    // gogreen-lint: allow(naked-new): intentionally leaked bench fixture
    return new PatternSet(std::move(result).value());
  }();
  return *fp;
}

void BM_FListBuild(benchmark::State& state) {
  const TransactionDb& db = BenchDb();
  for (auto _ : state) {
    benchmark::DoNotOptimize(FList::Build(db, 200));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.TotalItems()));
}
BENCHMARK(BM_FListBuild);

void BM_RankedDbBuild(benchmark::State& state) {
  const TransactionDb& db = BenchDb();
  const FList flist = FList::Build(db, 200);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gogreen::fpm::RankedDb::Build(db, flist));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(db.TotalItems()));
}
BENCHMARK(BM_RankedDbBuild);

void BM_TrieSubsetCounting(benchmark::State& state) {
  const TransactionDb& db = BenchDb();
  PatternTrie trie;
  for (const auto& p : BenchFp()) trie.Insert(gogreen::fpm::ItemSpan(p.items));
  for (auto _ : state) {
    for (gogreen::fpm::Tid t = 0; t < 2000; ++t) {
      trie.AddSupportForTransaction(db.Transaction(t));
    }
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_TrieSubsetCounting);

void BM_CompressLinear(benchmark::State& state) {
  for (auto _ : state) {
    auto cdb = gogreen::core::CompressDatabase(
        BenchDb(), BenchFp(),
        {CompressionStrategy::kMcp, MatcherKind::kLinear});
    benchmark::DoNotOptimize(cdb);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(BenchDb().NumTransactions()));
}
BENCHMARK(BM_CompressLinear);

void BM_CompressInverted(benchmark::State& state) {
  for (auto _ : state) {
    auto cdb = gogreen::core::CompressDatabase(
        BenchDb(), BenchFp(),
        {CompressionStrategy::kMcp, MatcherKind::kInvertedIndex});
    benchmark::DoNotOptimize(cdb);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(BenchDb().NumTransactions()));
}
BENCHMARK(BM_CompressInverted);

void BM_ProjectSlices(benchmark::State& state) {
  auto cdb = gogreen::core::CompressDatabase(
      BenchDb(), BenchFp(), {CompressionStrategy::kMcp, MatcherKind::kAuto});
  const FList flist = FList::FromCounts(
      cdb->CountItemSupports(cdb->ItemUniverseSize()), 200);
  const gogreen::core::SliceDb sdb =
      gogreen::core::SliceDb::Build(*cdb, flist);
  for (auto _ : state) {
    for (gogreen::fpm::Rank r = 0; r < std::min<size_t>(flist.size(), 16);
         ++r) {
      benchmark::DoNotOptimize(gogreen::core::ProjectSlices(sdb.slices, r));
    }
  }
}
BENCHMARK(BM_ProjectSlices);

void BM_MineHMine(benchmark::State& state) {
  const uint64_t minsup = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    auto miner = gogreen::fpm::CreateMiner(gogreen::fpm::MinerKind::kHMine);
    benchmark::DoNotOptimize(miner->Mine(BenchDb(), minsup));
  }
}
BENCHMARK(BM_MineHMine)->Arg(400)->Arg(200);

void BM_MineRecycleHM(benchmark::State& state) {
  const uint64_t minsup = static_cast<uint64_t>(state.range(0));
  auto cdb = gogreen::core::CompressDatabase(
      BenchDb(), BenchFp(), {CompressionStrategy::kMcp, MatcherKind::kAuto});
  for (auto _ : state) {
    auto miner = gogreen::core::CreateCompressedMiner(
        gogreen::core::RecycleAlgo::kHMine);
    benchmark::DoNotOptimize(miner->MineCompressed(*cdb, minsup));
  }
}
BENCHMARK(BM_MineRecycleHM)->Arg(400)->Arg(200);

}  // namespace

BENCHMARK_MAIN();
