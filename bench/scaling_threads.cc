// Thread-scaling experiment (not a paper figure): runtime of a miner family
// and its MCP-recycling variant at 1..N threads, at the hardest support of
// the dataset's sweep. See DESIGN.md "Parallel execution".
//
//   scaling_threads [--dataset weather|forest|connect4|pumsb]
//                   [--family hm|fp|tp] [--threads 1,2,4,8] [--json [path]]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench/bench_common.h"

namespace {

// A present-but-unrecognized flag value is a hard error: silently falling
// back to the default would benchmark the wrong configuration.
gogreen::data::DatasetId ParseDataset(int argc, char** argv) {
  using gogreen::data::DatasetId;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--dataset") != 0) continue;
    const char* name = argv[i + 1];
    if (std::strcmp(name, "weather") == 0) return DatasetId::kWeatherSub;
    if (std::strcmp(name, "forest") == 0) return DatasetId::kForestSub;
    if (std::strcmp(name, "connect4") == 0) return DatasetId::kConnect4Sub;
    if (std::strcmp(name, "pumsb") == 0) return DatasetId::kPumsbSub;
    std::fprintf(stderr,
                 "scaling_threads: unknown --dataset '%s' "
                 "(expected weather|forest|connect4|pumsb)\n",
                 name);
    std::exit(2);
  }
  return DatasetId::kWeatherSub;
}

gogreen::bench::AlgoFamily ParseFamily(int argc, char** argv) {
  using gogreen::bench::AlgoFamily;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--family") != 0) continue;
    const char* name = argv[i + 1];
    if (std::strcmp(name, "hm") == 0) return AlgoFamily::kHMine;
    if (std::strcmp(name, "fp") == 0) return AlgoFamily::kFpGrowth;
    if (std::strcmp(name, "tp") == 0) return AlgoFamily::kTreeProjection;
    std::fprintf(stderr,
                 "scaling_threads: unknown --family '%s' "
                 "(expected hm|fp|tp)\n",
                 name);
    std::exit(2);
  }
  return AlgoFamily::kHMine;
}

}  // namespace

int main(int argc, char** argv) {
  return gogreen::bench::RunThreadScalingFigure(
      "Thread scaling", ParseDataset(argc, argv), ParseFamily(argc, argv),
      gogreen::bench::ParseBenchOptions(argc, argv));
}
