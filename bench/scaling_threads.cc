// Thread-scaling experiment (not a paper figure): runtime of a miner family
// and its MCP-recycling variant at 1..N threads, at the hardest support of
// the dataset's sweep. See DESIGN.md "Parallel execution".
//
//   scaling_threads [--dataset weather|forest|connect4|pumsb]
//                   [--family hm|fp|tp] [--threads 1,2,4,8] [--json [path]]

#include <cstring>

#include "bench/bench_common.h"

namespace {

gogreen::data::DatasetId ParseDataset(int argc, char** argv) {
  using gogreen::data::DatasetId;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--dataset") != 0) continue;
    const char* name = argv[i + 1];
    if (std::strcmp(name, "forest") == 0) return DatasetId::kForestSub;
    if (std::strcmp(name, "connect4") == 0) return DatasetId::kConnect4Sub;
    if (std::strcmp(name, "pumsb") == 0) return DatasetId::kPumsbSub;
  }
  return DatasetId::kWeatherSub;
}

gogreen::bench::AlgoFamily ParseFamily(int argc, char** argv) {
  using gogreen::bench::AlgoFamily;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--family") != 0) continue;
    const char* name = argv[i + 1];
    if (std::strcmp(name, "fp") == 0) return AlgoFamily::kFpGrowth;
    if (std::strcmp(name, "tp") == 0) return AlgoFamily::kTreeProjection;
  }
  return AlgoFamily::kHMine;
}

}  // namespace

int main(int argc, char** argv) {
  return gogreen::bench::RunThreadScalingFigure(
      "Thread scaling", ParseDataset(argc, argv), ParseFamily(argc, argv),
      gogreen::bench::ParseBenchOptions(argc, argv));
}
