// Ablation: incremental-update strategies (Section 6 comparison). A
// transaction log grows in batches; after every batch the complete pattern
// set is refreshed three ways:
//   scratch   — re-mine the accumulated database (H-Mine);
//   negborder — classic negative-border maintenance (fpm/negative_border);
//   recycle   — compress with the previous round's patterns and re-mine
//               (core/incremental, the paper's approach).
// Expectations: negborder wins when batches barely move the distribution
// (few promotions), but degrades to full-database candidate counting when
// they do — and it must keep the whole database plus the border around;
// recycling stays uniformly close to its best case and also handles
// threshold changes and deletions (not shown here).

#include <cstdio>

#include "core/incremental.h"
#include "data/quest_gen.h"
#include "fpm/miner.h"
#include "fpm/negative_border.h"
#include "util/env.h"
#include "util/timer.h"

namespace {

gogreen::fpm::TransactionDb Batch(int day, size_t rows, uint64_t base_seed) {
  gogreen::data::QuestConfig cfg;
  cfg.num_transactions = rows;
  cfg.avg_transaction_len = 10.0;
  cfg.num_items = 1500;
  cfg.num_patterns = 100;
  cfg.avg_pattern_len = 4.0;
  cfg.max_pattern_len = 8;
  cfg.weight_skew = 2.0;
  cfg.corruption_mean = 0.3;
  cfg.table_seed = base_seed;  // Shared hidden table across batches.
  cfg.seed = base_seed + 1 + static_cast<uint64_t>(day);
  return std::move(gogreen::data::GenerateQuest(cfg)).value();
}

}  // namespace

int main() {
  using gogreen::Timer;

  const gogreen::BenchScale scale = gogreen::GetBenchScale();
  const size_t rows = scale == gogreen::BenchScale::kSmoke ? 2000 : 10000;
  constexpr double kFraction = 0.03;
  constexpr int kDays = 5;

  std::printf("== Ablation: incremental strategies (batches of %zu rows, "
              "support %.0f%%) ==\n",
              rows, kFraction * 100);
  std::printf("%-5s %10s | %10s %10s %10s | %10s %12s\n", "day", "rows",
              "scratch", "negborder", "recycle", "#patterns", "border size");

  gogreen::core::IncrementalSession recycle(Batch(0, rows, 500));
  gogreen::fpm::TransactionDb accumulated = recycle.db();
  gogreen::fpm::NegativeBorderMiner negborder(kFraction);

  for (int day = 0; day <= kDays; ++day) {
    double nb_secs;
    if (day == 0) {
      Timer t_nb;
      if (!negborder.Initialize(accumulated).ok()) return 1;
      nb_secs = t_nb.ElapsedSeconds();
    } else {
      const auto batch = Batch(day, rows, 500);
      recycle.AddBatch(batch);
      for (gogreen::fpm::Tid t = 0; t < batch.NumTransactions(); ++t) {
        accumulated.AddCanonicalTransaction(batch.Transaction(t));
      }
      Timer t_nb;
      if (!negborder.Insert(batch).ok()) return 1;
      nb_secs = t_nb.ElapsedSeconds();
    }
    const uint64_t minsup = gogreen::fpm::AbsoluteSupport(
        kFraction, accumulated.NumTransactions());

    Timer t_scratch;
    auto scratch = gogreen::fpm::CreateMiner(gogreen::fpm::MinerKind::kHMine)
                       ->Mine(accumulated, minsup);
    const double scratch_secs = t_scratch.ElapsedSeconds();
    if (!scratch.ok()) return 1;

    Timer t_rec;
    auto recycled = recycle.Mine(minsup);
    const double rec_secs = t_rec.ElapsedSeconds();
    if (!recycled.ok()) return 1;

    if (recycled->size() != scratch->size() ||
        negborder.Frequent().size() != scratch->size()) {
      std::fprintf(stderr,
                   "MISMATCH day %d: scratch=%zu negborder=%zu recycle=%zu\n",
                   day, scratch->size(), negborder.Frequent().size(),
                   recycled->size());
      return 2;
    }
    std::printf("%-5d %10zu | %9.3fs %9.3fs %9.3fs | %10zu %12zu\n", day,
                accumulated.NumTransactions(), scratch_secs, nb_secs,
                rec_secs, scratch->size(), negborder.BorderSize());
    std::fflush(stdout);
  }

  std::printf("negative-border stats: %llu full-DB expansions, %llu "
              "candidates counted over the full database\n",
              static_cast<unsigned long long>(
                  negborder.stats().full_db_expansions),
              static_cast<unsigned long long>(
                  negborder.stats().candidates_counted));
  return 0;
}
