// Ablation: sensitivity of the recycling benefit to xi_old (Section 5.2,
// observation 1: "a lower initial support will usually give better
// performance of recycling" — more resources spent in the first round mean
// more savings to reuse). Sweeps xi_old above the target xi_new and
// measures Recycle-HM time at the fixed xi_new.

#include <cstdio>

#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "data/datasets.h"
#include "fpm/miner.h"
#include "util/env.h"
#include "util/timer.h"

int main() {
  using gogreen::Timer;
  using gogreen::core::CompressionStrategy;
  using gogreen::core::MatcherKind;
  using gogreen::core::RecycleAlgo;

  const gogreen::BenchScale scale = gogreen::GetBenchScale();
  std::printf("== Ablation: recycling benefit vs xi_old (Recycle-HM, MCP, "
              "scale=%s) ==\n",
              gogreen::BenchScaleName(scale));

  for (gogreen::data::DatasetId id : gogreen::data::kAllDatasets) {
    const auto& spec = gogreen::data::GetDatasetSpec(id);
    auto db = gogreen::data::MakeDataset(id, scale);
    if (!db.ok()) return 1;
    const double xi_new = spec.xi_new_sweep.back();
    const uint64_t new_sup =
        gogreen::fpm::AbsoluteSupport(xi_new, db->NumTransactions());

    Timer timer;
    auto base = gogreen::fpm::CreateMiner(gogreen::fpm::MinerKind::kHMine);
    if (!base->Mine(*db, new_sup).ok()) return 1;
    const double baseline = timer.ElapsedSeconds();

    std::printf("%s: xi_new=%.4g%%, non-recycling H-Mine=%.2fs\n", spec.name,
                xi_new * 100, baseline);
    std::printf("  %-9s %10s %12s %12s %10s %9s\n", "xi_old", "#patterns",
                "mine@xi_old", "recycle-HM", "speedup", "ratio");

    // xi_old sweep: from just above xi_new up past the paper's xi_old.
    const double factors[] = {1.5, 2.5, 5.0, 10.0};
    for (const double factor : factors) {
      const double xi_old = xi_new * factor;
      if (xi_old > 1.0) continue;
      const uint64_t old_sup =
          gogreen::fpm::AbsoluteSupport(xi_old, db->NumTransactions());

      Timer old_timer;
      auto old_miner =
          gogreen::fpm::CreateMiner(gogreen::fpm::MinerKind::kHMine);
      auto fp = old_miner->Mine(*db, old_sup);
      if (!fp.ok()) return 1;
      const double old_secs = old_timer.ElapsedSeconds();
      if (fp->empty()) {
        std::printf("  %-8.4g%% %10zu  (no patterns to recycle)\n",
                    xi_old * 100, fp->size());
        continue;
      }

      gogreen::core::CompressionStats stats;
      auto cdb = gogreen::core::CompressDatabase(
          *db, fp.value(), {CompressionStrategy::kMcp, MatcherKind::kAuto},
          &stats);
      if (!cdb.ok()) return 1;

      Timer mine_timer;
      auto rm = gogreen::core::CreateCompressedMiner(RecycleAlgo::kHMine);
      if (!rm->MineCompressed(*cdb, new_sup).ok()) return 1;
      const double recycle_secs = mine_timer.ElapsedSeconds();

      std::printf("  %-8.4g%% %10zu %11.2fs %11.2fs %9.1fx %9.3f\n",
                  xi_old * 100, fp->size(), old_secs, recycle_secs,
                  recycle_secs > 0 ? baseline / recycle_secs : 0.0,
                  stats.Ratio());
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
