#!/usr/bin/env python3
"""Project-specific contract lint for the gogreen tree.

Enforces the cross-cutting contracts that generic tooling (clang-tidy)
cannot express:

  failpoint-registry  Every string literal passed to failpoint::MaybeFail()
                      must appear in the kKnownSites registry in
                      src/util/failpoint.cc, and every registry entry must
                      have at least one call site (no stale entries).
  env-access          Environment access (getenv/setenv/putenv) is confined
                      to src/util/env.cc; everything else goes through
                      gogreen::GetEnvOrEmpty so env reads stay auditable.
  raw-thread          No raw std::thread outside src/util/thread_pool.* —
                      all parallelism goes through the pool so lane ids,
                      shutdown order, and GOGREEN_THREADS stay meaningful.
  naked-new           No naked new/delete expressions outside
                      src/util/arena.h. Owning allocations use
                      make_unique/make_shared/containers; the few
                      intentionally leaked process singletons carry inline
                      suppressions.
  metric-naming       Every literal metric name passed to GetCounter/
                      GetGauge/GetHistogram follows the `<subsystem>.<what>`
                      snake_case scheme AND is listed (backticked) in the
                      DESIGN.md metrics table, so the documented inventory
                      is the emitted inventory. Dynamically-built names
                      (non-literal first argument) are out of scope.
  raw-mutex           No raw std locking primitives (std::mutex,
                      std::shared_mutex, std::condition_variable,
                      lock_guard/unique_lock/scoped_lock/shared_lock)
                      outside src/util/thread_annotations.h — everything
                      locks through the annotated gogreen::Mutex vocabulary
                      so the clang thread-safety build (DESIGN.md §15) sees
                      every acquisition. std::once_flag/call_once are fine.
  deprecated-api      The deleted pre-MineRequest entry points
                      (MineGoverned, MineCompressedGoverned, SetRunContext)
                      must not reappear under their old names — one query
                      is one fpm::MineRequest; governors ride in
                      MineRequest::run_context (internal helpers that bind
                      a context spell it BindRunContext).
  orphan-mutex        Every gogreen::Mutex / SharedMutex member must be
                      named by at least one GUARDED_BY / PT_GUARDED_BY in
                      the same file — a mutex that guards nothing is either
                      dead weight or (worse) guarding state the analyzer
                      cannot check. Wait-only mutexes (paired with a
                      CondVar, no guarded payload) carry an inline
                      suppression explaining the pairing.

A violation can be suppressed for one line with a comment on that line or
the line above:

    // gogreen-lint: allow(<rule>)[: rationale]

Usage:
    tools/lint/gogreen_lint.py [--root DIR]
    tools/lint/gogreen_lint.py --self-test

Exits 0 when clean, 1 on violations, 2 on usage/environment errors.
Scans src/, tools/, and bench/ (tests/ may probe synthetic failpoint sites
and spawn threads deliberately, so it is out of scope).
"""

import argparse
import os
import re
import sys

SCAN_DIRS = ("src", "tools", "bench")
CXX_EXTENSIONS = (".cc", ".h")

REGISTRY_FILE = os.path.join("src", "util", "failpoint.cc")
DESIGN_FILE = "DESIGN.md"

# Files exempt from a rule (repo-relative, forward slashes).
RULE_EXEMPT = {
    "env-access": {"src/util/env.cc"},
    "raw-thread": {"src/util/thread_pool.h", "src/util/thread_pool.cc"},
    "naked-new": {"src/util/arena.h"},
    # MaybeFail's own definition/declaration and the registry itself.
    "failpoint-registry": {"src/util/failpoint.h", "src/util/failpoint.cc"},
    # The annotated wrappers are the one place raw primitives may live,
    # and their internal Mutex&/std::mutex members are the vocabulary
    # itself, not guarded state.
    "raw-mutex": {"src/util/thread_annotations.h"},
    "orphan-mutex": {"src/util/thread_annotations.h"},
}

SUPPRESS_RE = re.compile(r"gogreen-lint:\s*allow\(([a-z-]+)\)")
MAYBE_FAIL_RE = re.compile(r'MaybeFail\(\s*"([^"]*)"')
KNOWN_SITES_RE = re.compile(
    r"kKnownSites\[\]\s*=\s*\{(.*?)\};", re.DOTALL)
STRING_RE = re.compile(r'"([^"\\]|\\.)*"')

METRIC_GET_RE = re.compile(
    r'Get(?:Counter|Gauge|Histogram)\(\s*"([^"]+)"')
# <subsystem>.<what> in snake_case; at least one dot.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
# Backticked tokens in DESIGN.md; membership set for the metrics table.
# Applied per line: ``` code fences would otherwise flip the pairing
# parity of every inline span after them.
BACKTICK_RE = re.compile(r"`([^`]+)`")

ENV_ACCESS_RE = re.compile(r"\b(?:std::)?(?:getenv|secure_getenv|setenv|"
                           r"putenv|unsetenv)\s*\(")
DEPRECATED_API_RE = re.compile(
    r"\b(?:MineGoverned|MineCompressedGoverned|SetRunContext)\b")
RAW_THREAD_RE = re.compile(r"\bstd::thread\b")
NAKED_NEW_RE = re.compile(r"\bnew\b|\bdelete\b")

# Deliberately excludes once_flag/call_once (no capability semantics to
# annotate) — the rest must go through util/thread_annotations.h.
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(?:_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b")

# A Mutex/SharedMutex *member* declaration (start of line, optionally
# mutable / namespace-qualified, simple `name;`). References and function
# parameters (`Mutex& mu`) intentionally do not match. The leading
# [^\S\n]* (horizontal whitespace only) keeps the match — and therefore
# the reported line and the one-line suppression window — on the
# declaration's own line even after comments above it are blanked.
MUTEX_MEMBER_RE = re.compile(
    r"^[^\S\n]*(?:mutable\s+)?(?:gogreen::)?(?:Mutex|SharedMutex)[^\S\n]+"
    r"(\w+)[^\S\n]*;",
    re.MULTILINE)
GUARDED_REF_RE = re.compile(r"\b(?:PT_)?GUARDED_BY\(([^)]*)\)")


class Violation:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text, keep_strings=False):
    """Blanks comments (and optionally string/char literals) with spaces,
    preserving line structure so reported line numbers stay correct."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n
                                 and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            i += 2
        elif c in "\"'":
            quote = c
            start = i
            i += 1
            while i < n and text[i] != quote:
                i += 2 if text[i] == "\\" else 1
            i += 1
            if keep_strings:
                out.append(text[start:i])
            else:
                out.append(quote + " " * max(0, i - start - 2) + quote)
        else:
            out.append(c)
            i += 1
    return "".join(out)


def suppressed_lines(raw_text, rule):
    """Line numbers (1-based) on which `rule` is suppressed: each allow()
    comment covers its own line and the next one."""
    lines = set()
    for num, line in enumerate(raw_text.splitlines(), start=1):
        for m in SUPPRESS_RE.finditer(line):
            if m.group(1) == rule:
                lines.add(num)
                lines.add(num + 1)
    return lines


def line_of(text, offset):
    return text.count("\n", 0, offset) + 1


def scan_pattern(path, raw_text, rule, regex, message, keep_strings=False):
    """Generic single-regex rule over comment-stripped text."""
    if path in RULE_EXEMPT.get(rule, set()):
        return []
    stripped = strip_comments_and_strings(raw_text, keep_strings=keep_strings)
    if rule == "naked-new":
        # `= delete`d special members and `new`/`delete` inside identifiers
        # are not allocation expressions.
        stripped = re.sub(r"=\s*delete\b", "", stripped)
    suppressed = suppressed_lines(raw_text, rule)
    violations = []
    for m in regex.finditer(stripped):
        line = line_of(stripped, m.start())
        if line in suppressed:
            continue
        violations.append(Violation(path, line, rule, message))
    return violations


def parse_known_sites(registry_text):
    """Extracts the kKnownSites string list from failpoint.cc's text."""
    stripped = strip_comments_and_strings(registry_text, keep_strings=True)
    m = KNOWN_SITES_RE.search(stripped)
    if m is None:
        return None
    return [s.group(0)[1:-1] for s in STRING_RE.finditer(m.group(1))]


def check_failpoints(files, registry_text):
    """Cross-checks MaybeFail call-site literals against kKnownSites."""
    violations = []
    known = parse_known_sites(registry_text)
    if known is None:
        violations.append(Violation(
            REGISTRY_FILE.replace(os.sep, "/"), 1, "failpoint-registry",
            "could not find the kKnownSites registry"))
        return violations
    used = set()
    for path, raw_text in files:
        if path in RULE_EXEMPT["failpoint-registry"]:
            continue
        stripped = strip_comments_and_strings(raw_text, keep_strings=True)
        suppressed = suppressed_lines(raw_text, "failpoint-registry")
        for m in MAYBE_FAIL_RE.finditer(stripped):
            site = m.group(1)
            used.add(site)
            line = line_of(stripped, m.start())
            if site not in known and line not in suppressed:
                violations.append(Violation(
                    path, line, "failpoint-registry",
                    f"failpoint site '{site}' is not in kKnownSites "
                    "(src/util/failpoint.cc)"))
    for site in known:
        if site not in used:
            violations.append(Violation(
                REGISTRY_FILE.replace(os.sep, "/"), 1, "failpoint-registry",
                f"kKnownSites entry '{site}' has no MaybeFail call site "
                "(stale registry entry)"))
    return violations


def check_metric_naming(files, design_text):
    """Literal Get{Counter,Gauge,Histogram} names: naming scheme plus
    DESIGN.md metrics-table membership."""
    documented = set()
    for design_line in design_text.splitlines():
        documented.update(BACKTICK_RE.findall(design_line))
    violations = []
    for path, raw_text in files:
        if path in RULE_EXEMPT.get("metric-naming", set()):
            continue
        stripped = strip_comments_and_strings(raw_text, keep_strings=True)
        suppressed = suppressed_lines(raw_text, "metric-naming")
        for m in METRIC_GET_RE.finditer(stripped):
            name = m.group(1)
            line = line_of(stripped, m.start())
            if line in suppressed:
                continue
            if not METRIC_NAME_RE.match(name):
                violations.append(Violation(
                    path, line, "metric-naming",
                    f"metric name '{name}' does not follow the "
                    "<subsystem>.<what> snake_case scheme"))
            elif name not in documented:
                violations.append(Violation(
                    path, line, "metric-naming",
                    f"metric name '{name}' is not listed in the DESIGN.md "
                    "metrics table"))
    return violations


def check_orphan_mutexes(files):
    """Every Mutex/SharedMutex member must be named by some GUARDED_BY /
    PT_GUARDED_BY expression in the same file."""
    violations = []
    for path, raw_text in files:
        if path in RULE_EXEMPT.get("orphan-mutex", set()):
            continue
        stripped = strip_comments_and_strings(raw_text)
        guarded_tokens = set()
        for m in GUARDED_REF_RE.finditer(stripped):
            guarded_tokens.update(re.findall(r"\w+", m.group(1)))
        suppressed = suppressed_lines(raw_text, "orphan-mutex")
        for m in MUTEX_MEMBER_RE.finditer(stripped):
            name = m.group(1)
            line = line_of(stripped, m.start())
            if line in suppressed or name in guarded_tokens:
                continue
            violations.append(Violation(
                path, line, "orphan-mutex",
                f"mutex '{name}' has no GUARDED_BY/PT_GUARDED_BY field in "
                "this file (guard something, or suppress with a rationale "
                "for a wait-only mutex)"))
    return violations


def run_checks(files, registry_text, design_text=""):
    """All rules over (path, text) pairs; returns the violation list."""
    violations = []
    for path, raw_text in files:
        violations += scan_pattern(
            path, raw_text, "env-access", ENV_ACCESS_RE,
            "environment access outside src/util/env.cc "
            "(use gogreen::GetEnvOrEmpty)")
        violations += scan_pattern(
            path, raw_text, "raw-thread", RAW_THREAD_RE,
            "raw std::thread outside src/util/thread_pool.* "
            "(use the ThreadPool)")
        violations += scan_pattern(
            path, raw_text, "naked-new", NAKED_NEW_RE,
            "naked new/delete outside src/util/arena.h "
            "(use make_unique/containers, or suppress for a deliberate "
            "singleton leak)")
        violations += scan_pattern(
            path, raw_text, "raw-mutex", RAW_MUTEX_RE,
            "raw std locking primitive outside "
            "src/util/thread_annotations.h (use gogreen::Mutex / "
            "MutexLock / CondVar so the thread-safety build sees it)")
        violations += scan_pattern(
            path, raw_text, "deprecated-api", DEPRECATED_API_RE,
            "deleted pre-MineRequest API name (use the unified "
            "fpm::MineRequest entry point; context-binding helpers are "
            "spelled BindRunContext)")
    violations += check_failpoints(files, registry_text)
    violations += check_metric_naming(files, design_text)
    violations += check_orphan_mutexes(files)
    return violations


def collect_files(root):
    files = []
    for top in SCAN_DIRS:
        for dirpath, _, names in os.walk(os.path.join(root, top)):
            for name in sorted(names):
                if not name.endswith(CXX_EXTENSIONS):
                    continue
                full = os.path.join(dirpath, name)
                rel = os.path.relpath(full, root).replace(os.sep, "/")
                with open(full, encoding="utf-8") as f:
                    files.append((rel, f.read()))
    return files


def self_test():
    """Verifies every rule both fires on a seeded violation and stays quiet
    on the accepted idiom. Run by ctest (gogreen_lint_self_test)."""
    registry = ('constexpr std::string_view kKnownSites[] = {\n'
                '    "io.read",  // reader\n'
                '    "io.stale",\n'
                '};\n')
    design = ("| `io.counter` | documented counter |\n"
              "| `mine.items_scanned` | documented counter |\n")
    cases = [
        # (rule, file name, content, expect_violation)
        ("env-access", "src/a.cc", 'char* v = std::getenv("X");\n', True),
        ("env-access", "src/a.cc", "// std::getenv in a comment\n", False),
        ("env-access", "src/util/env.cc", 'getenv("X");\n', False),
        ("raw-thread", "src/a.cc", "std::thread t(run);\n", True),
        ("raw-thread", "src/a.cc", "std::this_thread::yield();\n", False),
        ("raw-thread", "src/util/thread_pool.cc", "std::thread t;\n", False),
        ("naked-new", "src/a.cc", "auto* p = new Foo();\n", True),
        ("naked-new", "src/a.cc", "delete p;\n", True),
        ("naked-new", "src/a.cc", "Foo(const Foo&) = delete;\n", False),
        ("naked-new", "src/a.cc",
         "// gogreen-lint: allow(naked-new): leaked singleton\n"
         "auto* p = new Foo();\n", False),
        ("naked-new", "src/a.cc", 'Log("new results, delete none");\n',
         False),
        ("naked-new", "src/util/arena.h", "new (slot) T();\n", False),
        ("failpoint-registry", "src/a.cc",
         'MaybeFail("io.bogus");\n', True),
        ("failpoint-registry", "src/a.cc",
         '// MaybeFail("io.bogus") in a comment\n', False),
        ("metric-naming", "src/a.cc",
         'reg.GetCounter("io.counter");\n', False),
        ("metric-naming", "src/a.cc",
         'reg.GetHistogram("BadName");\n', True),
        ("metric-naming", "src/a.cc",
         'reg.GetCounter("io.undocumented");\n', True),
        ("metric-naming", "src/a.cc",
         "reg.GetCounter(dynamic_name);\n", False),
        ("metric-naming", "src/a.cc",
         '// reg.GetCounter("io.undocumented") in a comment\n', False),
        ("metric-naming", "src/a.cc",
         "// gogreen-lint: allow(metric-naming): probe instrument\n"
         'reg.GetCounter("io.undocumented");\n', False),
        ("deprecated-api", "src/a.cc",
         "auto out = miner->MineGoverned(db, 3, &ctx);\n", True),
        ("deprecated-api", "src/a.cc",
         "miner.SetRunContext(&ctx);\n", True),
        ("deprecated-api", "src/a.cc",
         "auto out = m->MineCompressedGoverned(cdb, 3, &ctx);\n", True),
        ("deprecated-api", "src/a.cc",
         "ctx.BindRunContext(run_ctx_);\n", False),
        ("deprecated-api", "src/a.cc",
         "// SetRunContext in a comment\n", False),
        ("deprecated-api", "src/a.cc",
         "ctx->SetRequestId(id);\n", False),
        ("raw-mutex", "src/a.cc", "std::mutex mu_;\n", True),
        ("raw-mutex", "src/a.cc", "std::scoped_lock lock(mu_);\n", True),
        ("raw-mutex", "src/a.cc",
         "std::condition_variable_any cv_;\n", True),
        ("raw-mutex", "src/a.cc", "std::call_once(flag_, Init);\n", False),
        ("raw-mutex", "src/a.cc", "// std::mutex in a comment\n", False),
        ("raw-mutex", "src/util/thread_annotations.h",
         "std::mutex mu_;\n", False),
        ("raw-mutex", "src/a.cc",
         "// gogreen-lint: allow(raw-mutex): interop with C library\n"
         "std::mutex mu_;\n", False),
        ("orphan-mutex", "src/a.cc",
         "Mutex mu_;\nint n_ GUARDED_BY(mu_) = 0;\n", False),
        ("orphan-mutex", "src/a.cc", "Mutex mu_;\nint n_ = 0;\n", True),
        ("orphan-mutex", "src/a.cc",
         "mutable gogreen::SharedMutex map_mu_;\n"
         "Table* table_ PT_GUARDED_BY(map_mu_);\n", False),
        ("orphan-mutex", "src/a.cc",
         "Mutex a_mu_;\nint n_ GUARDED_BY(b_mu_) = 0;\n", True),
        ("orphan-mutex", "src/a.cc",
         "// gogreen-lint: allow(orphan-mutex): wait-only, pairs idle_cv_\n"
         "Mutex idle_mu_;\n", False),
        ("orphan-mutex", "src/a.cc", "void Wake(Mutex& mu);\n", False),
        ("orphan-mutex", "src/util/thread_annotations.h",
         "Mutex mu_;\n", False),
    ]
    failures = []
    for rule, path, content, expect in cases:
        base = [(path, content),
                ("src/b.cc", 'MaybeFail("io.read");\n'
                             'MaybeFail("io.stale");\n')]
        found = [v for v in run_checks(base, registry, design)
                 if v.rule == rule and v.path == path]
        if bool(found) != expect:
            failures.append(
                f"rule {rule} on {path!r}: expected "
                f"{'a violation' if expect else 'clean'}, got "
                f"{[str(v) for v in found] or 'clean'}")
    # Stale-entry detection: registry lists a site nobody calls.
    stale = [v for v in run_checks([("src/b.cc", 'MaybeFail("io.read");\n')],
                                   registry, design)
             if v.rule == "failpoint-registry"]
    if not any("io.stale" in v.message for v in stale):
        failures.append("stale kKnownSites entry not reported")
    if failures:
        for f in failures:
            print("self-test FAILED:", f, file=sys.stderr)
        return 1
    print(f"gogreen_lint self-test: {len(cases) + 1} cases passed")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: two levels up "
                             "from this script)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's own test cases and exit")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    registry_path = os.path.join(root, REGISTRY_FILE)
    if not os.path.isfile(registry_path):
        print(f"error: {registry_path} not found (wrong --root?)",
              file=sys.stderr)
        return 2
    with open(registry_path, encoding="utf-8") as f:
        registry_text = f.read()
    design_path = os.path.join(root, DESIGN_FILE)
    if not os.path.isfile(design_path):
        print(f"error: {design_path} not found (wrong --root?)",
              file=sys.stderr)
        return 2
    with open(design_path, encoding="utf-8") as f:
        design_text = f.read()

    violations = run_checks(collect_files(root), registry_text, design_text)
    for v in sorted(violations, key=lambda v: (v.path, v.line)):
        print(v)
    if violations:
        print(f"gogreen_lint: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("gogreen_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
