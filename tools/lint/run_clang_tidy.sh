#!/usr/bin/env bash
# Runs clang-tidy (checks from the top-level .clang-tidy, warnings as
# errors) over every first-party translation unit, using the compile
# database exported by CMake.
#
#   tools/lint/run_clang_tidy.sh [build-dir] [jobs]
#
# The build directory must have been configured already (any configure
# produces compile_commands.json; see CMAKE_EXPORT_COMPILE_COMMANDS in
# CMakeLists.txt). Exits nonzero on the first file with findings.
set -euo pipefail

# CI legs that already run clang over every TU (the thread-safety job)
# set GOGREEN_SKIP_CLANG_TIDY to a reason string: re-running tidy there
# would double the clang time for zero new findings.
if [[ -n "${GOGREEN_SKIP_CLANG_TIDY:-}" ]]; then
  echo "clang-tidy: skipped (${GOGREEN_SKIP_CLANG_TIDY})"
  exit 0
fi

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
BUILD_DIR="${1:-${ROOT}/build}"
JOBS="${2:-$(nproc)}"
TIDY="${CLANG_TIDY:-clang-tidy}"

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "error: ${BUILD_DIR}/compile_commands.json not found;" \
       "configure first: cmake -B ${BUILD_DIR} -S ${ROOT}" >&2
  exit 2
fi
if ! command -v "${TIDY}" >/dev/null; then
  echo "error: ${TIDY} not found (set CLANG_TIDY or apt install clang-tidy)" >&2
  exit 2
fi

cd "${ROOT}"
# First-party TUs only: generated/third-party code is not held to the
# curated check set.
git ls-files 'src/*.cc' 'src/**/*.cc' 'tools/*.cc' 'bench/*.cc' |
  xargs -r -P "${JOBS}" -n 4 "${TIDY}" -p "${BUILD_DIR}" --quiet
echo "clang-tidy: clean"
