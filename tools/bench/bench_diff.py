#!/usr/bin/env python3
"""Diff a fresh bench JSON against a committed baseline.

Two classes of comparison (DESIGN.md §12, EXPERIMENTS.md):

* **Structural** fields — everything except wall-clock timings and the
  `threads` field — must match exactly. Pattern counts, routes, and the
  deterministic work counters (`mine.items_scanned`,
  `mine.projections_built`) are machine-independent: the datasets are
  seeded synthetic and the counters are bit-identical at any thread
  count, so any drift is a real behavior change. One mismatch fails.

* **Timing** fields (`seconds`, `mine_seconds`, `compress_seconds`) are
  compared as each row's share of the file's total `seconds` by default,
  which cancels machine-speed differences between the box that committed
  the baseline and a CI runner (`--absolute` compares raw seconds
  instead). Rows whose baseline timing is below `--min-seconds` are
  skipped — microsecond rows are all noise. Drift beyond `--warn-pct`
  warns, beyond `--fail-pct` fails.

Exit status: 0 clean (warnings allowed), 1 structural mismatch or timing
drift beyond the fail band, 2 usage/parse error.
"""

import argparse
import json
import sys

TIMING_KEYS = ("seconds", "mine_seconds", "compress_seconds")
EXCLUDED_KEYS = {"threads"}  # machine-dependent, not part of the contract


def is_timing_key(key):
    """Wall-clock fields: row timings plus one-shot header timings like
    old_mine_seconds / compress_mcp_seconds."""
    return key == "seconds" or key.endswith("_seconds")


def row_label(index, row):
    """Human label for a row: its identity fields, not its timings."""
    parts = []
    for key in ("algorithm", "dataset", "xi_new", "xi", "min_support"):
        if key in row:
            parts.append(f"{key}={row[key]}")
    ident = " ".join(parts) if parts else "?"
    return f"row {index} ({ident})"


def structural_view(value):
    """Recursively drop timing and excluded keys; what remains must match."""
    if isinstance(value, dict):
        return {
            k: structural_view(v)
            for k, v in value.items()
            if not is_timing_key(k) and k not in EXCLUDED_KEYS
        }
    if isinstance(value, list):
        return [structural_view(v) for v in value]
    return value


def diff_structural(label, baseline, fresh, out):
    """Reports per-key structural mismatches; returns the mismatch count."""
    base_view = structural_view(baseline)
    fresh_view = structural_view(fresh)
    if base_view == fresh_view:
        return 0
    mismatches = 0
    keys = sorted(set(base_view) | set(fresh_view))
    for key in keys:
        b = base_view.get(key, "<missing>")
        f = fresh_view.get(key, "<missing>")
        if b != f:
            out.append(f"STRUCT {label}: {key} baseline={b!r} fresh={f!r}")
            mismatches += 1
    return mismatches


def total_seconds(doc):
    return sum(float(row.get("seconds", 0.0)) for row in doc.get("rows", []))


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as err:
        print(f"bench_diff: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(
        description="Diff a fresh bench JSON against a committed baseline.")
    parser.add_argument("--baseline", required=True,
                        help="committed reference JSON (bench/baselines/)")
    parser.add_argument("--fresh", required=True,
                        help="freshly produced JSON to validate")
    parser.add_argument("--warn-pct", type=float, default=10.0,
                        help="timing drift that prints a warning "
                             "(default %(default)s)")
    parser.add_argument("--fail-pct", type=float, default=25.0,
                        help="timing drift that fails the diff "
                             "(default %(default)s)")
    parser.add_argument("--min-seconds", type=float, default=0.01,
                        help="skip timing checks for rows whose baseline "
                             "seconds are below this (default %(default)s)")
    parser.add_argument("--absolute", action="store_true",
                        help="compare raw seconds instead of "
                             "share-of-total-run")
    args = parser.parse_args()

    baseline = load(args.baseline)
    fresh = load(args.fresh)
    out = []
    failures = 0
    warnings = 0

    # Top-level context (figure tag, scale, dataset, xi_old, ...) is
    # structural: a baseline produced at another scale must not compare.
    base_top = {k: v for k, v in baseline.items() if k != "rows"}
    fresh_top = {k: v for k, v in fresh.items() if k != "rows"}
    failures += diff_structural("header", base_top, fresh_top, out)

    base_rows = baseline.get("rows", [])
    fresh_rows = fresh.get("rows", [])
    if len(base_rows) != len(fresh_rows):
        out.append(f"STRUCT rows: baseline has {len(base_rows)} rows, "
                   f"fresh has {len(fresh_rows)}")
        failures += 1
    else:
        base_total = total_seconds(baseline)
        fresh_total = total_seconds(fresh)
        for i, (brow, frow) in enumerate(zip(base_rows, fresh_rows)):
            label = row_label(i, brow)
            failures += diff_structural(label, brow, frow, out)
            for key in TIMING_KEYS:
                if key not in brow or key not in frow:
                    continue
                bval, fval = float(brow[key]), float(frow[key])
                if bval < args.min_seconds:
                    continue  # noise floor, applied per timing field
                if not args.absolute:
                    bval = bval / base_total if base_total > 0 else 0.0
                    fval = fval / fresh_total if fresh_total > 0 else 0.0
                if bval <= 0.0:
                    continue
                drift = (fval - bval) / bval * 100.0
                unit = "s" if args.absolute else " share"
                if abs(drift) > args.fail_pct:
                    out.append(f"TIME {label}: {key} baseline={bval:.4g}"
                               f"{unit} fresh={fval:.4g}{unit} "
                               f"({drift:+.1f}%) FAIL")
                    failures += 1
                elif abs(drift) > args.warn_pct:
                    out.append(f"TIME {label}: {key} baseline={bval:.4g}"
                               f"{unit} fresh={fval:.4g}{unit} "
                               f"({drift:+.1f}%) warn")
                    warnings += 1

    for line in out:
        print(line)
    verdict = "FAIL" if failures else "ok"
    print(f"bench_diff: {args.fresh} vs {args.baseline}: "
          f"{failures} failure(s), {warnings} warning(s) [{verdict}]")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
