#!/usr/bin/env python3
"""Validate a --request-log file against the wide-event contract.

Checks (DESIGN.md §12, admission fields §14):

1. Every line is one valid JSON object whose keys are exactly the
   documented schema, in the documented order. Unknown top-level keys are
   a hard failure (named individually), as are missing or reordered ones.
2. Request ids are unique and strictly increasing (with `--concurrent`:
   unique only — concurrent drivers interleave in file order).
3. `route`/`outcome` values come from their documented enums, `cache_hit`
   is true iff the route is `exact`, and `coalesced` (a single-flight
   follower adopting a concurrent identical mine) implies route `exact`.
4. Admission consistency: `shed` is true iff the outcome is "shed" (route
   `none`, not coalesced, not partial); `degraded` is true iff the
   outcome is "degraded" (route `exact`: a stale store serve).
5. Per-request phase seconds sum to at most the wall seconds, and to at
   least wall minus `--wall-slack-pct` (with a 2 ms absolute floor for
   microsecond-scale exact hits). Skipped under `--concurrent`: phase
   attribution is exact only for single-driver sessions (DESIGN.md §12).
   Shed/degraded events never mined, so they carry no phases and are
   skipped too.
6. With `--metrics <metrics.json>`: completed-request route counts
   reconcile exactly with the `serve.*` counters, including
   `serve.coalesced` against the coalesced-true events. When the snapshot
   carries admission counters, the overload ledger must balance exactly:
   `serve.admitted` == ok|partial|degraded events, `serve.shed` == shed
   events, `serve.degraded` == degraded events, and
   `serve.admitted + serve.shed + serve.errors` == every event in the
   log (DESIGN.md §14).

Exit status: 0 valid, 1 violation, 2 usage/parse error.
"""

import argparse
import json
import sys

SCHEMA_KEYS = [
    "request_id", "dataset", "min_support", "fingerprint", "route",
    "cache_hit", "coalesced", "seed_support", "evictions",
    "image_evictions", "patterns", "partial", "frontier_support",
    "outcome", "seconds", "bytes_peak", "threads", "tenant", "queued_ms",
    "degraded", "shed", "phases",
]
ROUTES = {"none", "exact", "filter-down", "recycle"}
ROUTE_COUNTER = {
    "exact": "serve.cache_hits",
    "filter-down": "serve.filter_down",
    "recycle": "serve.recycled",
    "none": "serve.scratch",
}


def fail(errors, line_no, message):
    errors.append(f"line {line_no}: {message}")


def main():
    parser = argparse.ArgumentParser(
        description="Validate a gogreen --request-log file.")
    parser.add_argument("log", help="request log (one JSON object per line)")
    parser.add_argument("--metrics", default=None,
                        help="metrics JSON snapshot from the same run; "
                             "route counts must reconcile exactly")
    parser.add_argument("--concurrent", action="store_true",
                        help="log written by concurrent drivers: ids must "
                             "be unique but may interleave, and per-request "
                             "phase attribution is not checked")
    parser.add_argument("--wall-slack-pct", type=float, default=5.0,
                        help="allowed gap between wall seconds and the "
                             "phase sum (default %(default)s%%)")
    args = parser.parse_args()

    try:
        with open(args.log, encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as err:
        print(f"validate_request_log: cannot read {args.log}: {err}",
              file=sys.stderr)
        return 2
    if not lines:
        print(f"validate_request_log: {args.log} is empty", file=sys.stderr)
        return 2

    errors = []
    events = []
    for i, line in enumerate(lines, 1):
        try:
            pairs = json.loads(line, object_pairs_hook=list)
        except ValueError as err:
            fail(errors, i, f"not valid JSON: {err}")
            continue
        keys = [k for k, _ in pairs]
        if keys != SCHEMA_KEYS:
            # Name the offenders: unknown keys are the dangerous drift
            # (silently unvalidated data), so they fail loudest.
            unknown = [k for k in keys if k not in SCHEMA_KEYS]
            missing = [k for k in SCHEMA_KEYS if k not in keys]
            if unknown:
                fail(errors, i, f"unknown top-level key(s) {unknown} "
                                f"(not in the documented schema)")
            if missing:
                fail(errors, i, f"missing schema key(s) {missing}")
            if not unknown and not missing:
                fail(errors, i, f"key order {keys} != schema {SCHEMA_KEYS}")
            continue
        events.append((i, dict(pairs)))

    last_id = 0
    seen_ids = set()
    for i, ev in events:
        rid = ev["request_id"]
        if rid in seen_ids:
            fail(errors, i, f"duplicate request_id {rid}")
        if not args.concurrent and rid <= last_id:
            fail(errors, i, f"request_id {rid} not strictly increasing "
                            f"(previous {last_id})")
        seen_ids.add(rid)
        last_id = max(last_id, rid)

        if ev["route"] not in ROUTES:
            fail(errors, i, f"unknown route '{ev['route']}'")
        if ev["cache_hit"] != (ev["route"] == "exact"):
            fail(errors, i, f"cache_hit={ev['cache_hit']} inconsistent "
                            f"with route '{ev['route']}'")
        if not isinstance(ev["coalesced"], bool):
            fail(errors, i, f"coalesced={ev['coalesced']!r} is not a bool")
        elif ev["coalesced"] and ev["route"] != "exact":
            fail(errors, i, f"coalesced event has route '{ev['route']}' "
                            f"(followers report exact)")
        outcome = ev["outcome"]
        if outcome not in ("ok", "partial", "degraded", "shed") and \
                not outcome.startswith("error:"):
            fail(errors, i, f"unknown outcome '{outcome}'")
        if outcome in ("ok", "partial") and \
                (outcome == "partial") != bool(ev["partial"]):
            fail(errors, i, f"outcome '{outcome}' inconsistent with "
                            f"partial={ev['partial']}")

        # Admission fields (DESIGN.md §14): the typed-outcome flags and
        # the outcome string must tell the same story.
        if not isinstance(ev["shed"], bool):
            fail(errors, i, f"shed={ev['shed']!r} is not a bool")
        elif ev["shed"] != (outcome == "shed"):
            fail(errors, i, f"shed={ev['shed']} inconsistent with "
                            f"outcome '{outcome}'")
        if not isinstance(ev["degraded"], bool):
            fail(errors, i, f"degraded={ev['degraded']!r} is not a bool")
        elif ev["degraded"] != (outcome == "degraded"):
            fail(errors, i, f"degraded={ev['degraded']} inconsistent with "
                            f"outcome '{outcome}'")
        if outcome == "shed":
            if ev["route"] != "none":
                fail(errors, i, f"shed event has route '{ev['route']}' "
                                f"(never dispatched: must be 'none')")
            if ev["coalesced"]:
                fail(errors, i, "shed event marked coalesced")
            if ev["partial"]:
                fail(errors, i, "shed event marked partial")
        if outcome == "degraded" and ev["route"] != "exact":
            fail(errors, i, f"degraded event has route '{ev['route']}' "
                            f"(stale store serve: must be 'exact')")
        if not isinstance(ev["queued_ms"], int) or ev["queued_ms"] < 0:
            fail(errors, i, f"queued_ms={ev['queued_ms']!r} is not a "
                            f"non-negative integer")
        if not isinstance(ev["tenant"], str):
            fail(errors, i, f"tenant={ev['tenant']!r} is not a string")

        if args.concurrent:
            continue  # Phase spans attribute exactly only single-driver.
        if outcome in ("shed", "degraded"):
            continue  # Never mined: no phases to attribute.
        wall = float(ev["seconds"])
        # phases parsed with object_pairs_hook: a list of (name, seconds).
        phase_sum = sum(float(v) for _, v in ev["phases"])
        slack = max(wall * args.wall_slack_pct / 100.0, 0.002)
        if phase_sum > wall + 1e-6:
            fail(errors, i, f"phase sum {phase_sum:.6f}s exceeds wall "
                            f"{wall:.6f}s")
        if phase_sum < wall - slack:
            fail(errors, i, f"phase sum {phase_sum:.6f}s under-attributes "
                            f"wall {wall:.6f}s (slack {slack:.6f}s)")

    if args.metrics is not None:
        try:
            with open(args.metrics, encoding="utf-8") as f:
                counters = json.load(f).get("counters", {})
        except (OSError, ValueError) as err:
            print(f"validate_request_log: cannot read {args.metrics}: {err}",
                  file=sys.stderr)
            return 2
        completed = [ev for _, ev in events
                     if ev["outcome"] in ("ok", "partial")]
        if counters.get("serve.requests", 0) != len(completed):
            errors.append(f"serve.requests={counters.get('serve.requests')} "
                          f"!= {len(completed)} completed events")
        for route, counter in ROUTE_COUNTER.items():
            want = sum(1 for ev in completed if ev["route"] == route)
            got = counters.get(counter, 0)
            if got != want:
                errors.append(f"{counter}={got} != {want} completed "
                              f"'{route}' events")
        coalesced = sum(1 for ev in completed if ev["coalesced"] is True)
        if counters.get("serve.coalesced", 0) != coalesced:
            errors.append(
                f"serve.coalesced={counters.get('serve.coalesced', 0)} "
                f"!= {coalesced} coalesced events")
        failed = sum(1 for _, ev in events
                     if ev["outcome"].startswith("error:"))
        if counters.get("serve.errors", 0) != failed:
            errors.append(f"serve.errors={counters.get('serve.errors')} "
                          f"!= {failed} error events")
        # Admission-ledger reconciliation (DESIGN.md §14) — only when the
        # run had an admission controller (the counters exist): every
        # event is exactly one of admitted, shed, or error.
        if "serve.admitted" in counters:
            degraded = sum(1 for _, ev in events
                           if ev["outcome"] == "degraded")
            shed = sum(1 for _, ev in events if ev["outcome"] == "shed")
            admitted = len(completed) + degraded
            if counters.get("serve.admitted", 0) != admitted:
                errors.append(
                    f"serve.admitted={counters.get('serve.admitted')} "
                    f"!= {admitted} ok|partial|degraded events")
            if counters.get("serve.shed", 0) != shed:
                errors.append(f"serve.shed={counters.get('serve.shed', 0)} "
                              f"!= {shed} shed events")
            if counters.get("serve.degraded", 0) != degraded:
                errors.append(
                    f"serve.degraded={counters.get('serve.degraded', 0)} "
                    f"!= {degraded} degraded events")
            total = (counters.get("serve.admitted", 0) +
                     counters.get("serve.shed", 0) +
                     counters.get("serve.errors", 0))
            if total != len(events):
                errors.append(
                    f"serve.admitted + serve.shed + serve.errors = {total} "
                    f"!= {len(events)} events issued")

    for err in errors:
        print(f"validate_request_log: {err}")
    print(f"validate_request_log: {args.log}: {len(events)} event(s), "
          f"{len(errors)} violation(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
