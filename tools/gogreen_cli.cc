// gogreen — command-line front end for the library.
//
//   gogreen mine     -i data.dat -s 0.02 [-a h-mine] [-o patterns.bin]
//   gogreen recycle  -i data.dat -p patterns.bin -s 0.01 [--strategy MCP]
//   gogreen compress -i data.dat -p patterns.bin -o data.cdb
//   gogreen rules    -i data.dat -p patterns.bin [-c 0.6]
//   gogreen summary  -p patterns.bin [--closed|--maximal]
//   gogreen generate --kind quest|dense -n 100000 -o data.dat [...]
//   gogreen stats    -i data.dat
//   gogreen session  -i data.dat [--script cmds.txt] [--store-dir dir]
//                    (interactive REPL on a tty; batch mode otherwise —
//                    see serve/session.h for the command language)
//   gogreen serve    -i data.dat (--socket path | --port n) [--store-dir d]
//                    (multi-tenant daemon speaking the framed wire
//                    protocol of net/wire.h; SIGINT/SIGTERM drain
//                    gracefully and persist the store)
//   gogreen client   (--socket path | --port n) [--mine s | --ping |
//                    --stats | --store | --script cmds.txt]
//                    (one-shot queries or the session command language,
//                    executed against a daemon instead of in-process)
//
// Every subcommand also accepts the observability flags:
//   --metrics-json <path>   write a counters/gauges/histograms/spans JSON
//                           snapshot of the run (obs::MetricsJson)
//   --stats-json <path>     alias of --metrics-json (dump-on-exit naming)
//   --stats-prom <path>     write the same state in Prometheus text
//                           exposition format (obs::MetricsProm)
//   --trace <path>          write Chrome trace_event JSON of the phase
//                           spans (open at chrome://tracing)
//   --request-log <path>    append one JSON line per served MineRequest
//                           (session subcommand; obs::RequestLog schema)
// and the run-governor flags (honored by mine/recycle):
//   --timeout-ms <n>        stop mining after n milliseconds and return the
//                           partial (but exact-at-frontier) pattern set
//   --mem-limit-mb <n>      budget for mining scratch structures
//
// Exit codes follow sysexits where one fits: 0 success, 64 usage error,
// 65 malformed input data, 70 internal error, 74 IO error, 75 partial
// result (governor stopped the run early; stdout names the frontier).
//
// Patterns files use the binary format of fpm/pattern_io.h (or the FIMI
// text format when the file name ends in .txt).

#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "core/recycler.h"
#include "data/dat_io.h"
#include "data/dense_gen.h"
#include "data/quest_gen.h"
#include "fpm/miner.h"
#include "fpm/pattern_io.h"
#include "fpm/rules.h"
#include "fpm/summarize.h"
#include "net/client.h"
#include "net/server.h"
#include "net/wire.h"
#include "obs/export.h"
#include "obs/request_log.h"
#include "obs/trace.h"
#include "serve/admission.h"
#include "serve/mining_service.h"
#include "serve/session.h"
#include "serve/wire_service.h"
#include "util/run_context.h"
#include "util/status_codes.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using gogreen::Result;
using gogreen::Status;
using gogreen::StatusCode;
using gogreen::Timer;
// Exit codes and the Status -> sysexits mapping live in
// util/status_codes.h, shared with the session driver and `client`.
using gogreen::kExitUsage;

/// Set when an input file opened fine but its *content* was malformed, so
/// the InvalidArgument maps to EX_DATAERR rather than EX_USAGE.
bool g_data_error = false;

/// Set when a governed run stopped early and returned a partial result.
bool g_partial = false;

/// Non-null when --timeout-ms / --mem-limit-mb armed a governor in main().
gogreen::RunContext* g_governor = nullptr;

/// Minimal flag parser: --key value / -k value pairs plus bare switches.
/// Negative numbers ("-0.5", "-12") are treated as values, not switches,
/// and multi-dash keys ("--metrics-json") keep their inner dashes.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      const size_t body = key.find_first_not_of('-');
      if (key.empty() || key[0] != '-' || body == std::string::npos ||
          IsNumber(key)) {
        continue;  // Not a switch (bare value already consumed, or noise).
      }
      key = key.substr(body);
      if (i + 1 < argc && IsValue(argv[i + 1])) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key, const std::string& dflt = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }

  Result<double> GetDouble(const std::string& key, double dflt) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (it->second.empty() || end == nullptr || *end != '\0' ||
        errno == ERANGE) {
      return BadNumber(key, it->second);
    }
    return v;
  }

  Result<uint64_t> GetInt(const std::string& key, uint64_t dflt) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(it->second.c_str(), &end, 10);
    // strtoull silently wraps negatives; reject them explicitly.
    if (it->second.empty() || it->second[0] == '-' || end == nullptr ||
        *end != '\0' || errno == ERANGE) {
      return BadNumber(key, it->second);
    }
    return static_cast<uint64_t>(v);
  }

 private:
  static Status BadNumber(const std::string& key, const std::string& value) {
    return Status::InvalidArgument("flag -" + key + " expects a number, got " +
                                   (value.empty() ? "nothing" : "'" + value +
                                                                    "'"));
  }

  /// A dash followed by a digit or '.' is a negative number, not a switch.
  static bool IsNumber(const std::string& s) {
    return s.size() > 1 && s[0] == '-' &&
           (std::isdigit(static_cast<unsigned char>(s[1])) || s[1] == '.');
  }

  static bool IsValue(const char* s) { return s[0] != '-' || IsNumber(s); }

  std::map<std::string, std::string> values_;
};

int ExitCodeFor(const Status& status) {
  return gogreen::ExitCodeForStatus(status, g_data_error, g_partial);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return ExitCodeFor(status);
}

int Usage() {
  std::fprintf(stderr,
               "usage: gogreen <mine|recycle|compress|rules|summary|"
               "generate|stats|session|serve|client> [flags]\n"
               "  mine     -i data.dat -s <frac|count> [-a apriori|eclat|"
               "h-mine|fp-growth|tree-projection] [-o patterns.{bin,txt}]\n"
               "  recycle  -i data.dat -p patterns.bin -s <frac|count> "
               "[--strategy MCP|MLP] [-o out.bin]\n"
               "  compress -i data.dat -p patterns.bin -o data.cdb "
               "[--strategy MCP|MLP]\n"
               "  rules    -i data.dat -p patterns.bin [-c 0.6] [-k 20]\n"
               "  summary  -p patterns.bin [--closed] [--maximal]\n"
               "  generate --kind quest|dense -n <tuples> -o data.dat\n"
               "  stats    -i data.dat\n"
               "  session  -i data.dat [--script cmds.txt] [--store-dir d]\n"
               "           [--dataset-id name] [--store-mb n] [-a <algo>]\n"
               "           [--tenant name] [--max-queue n] [--quota-qps f]\n"
               "           (--max-queue/--quota-qps arm admission control:\n"
               "            bounded wait queue, per-tenant token buckets,\n"
               "            degraded serves under overload; see DESIGN.md\n"
               "            §14)\n"
               "  serve    -i data.dat (--socket path | --port n)\n"
               "           [--store-dir d] [--max-connections n]\n"
               "           [--hold-ms n] [+ session's service/admission\n"
               "           flags]; daemon for the wire protocol (DESIGN.md\n"
               "           §16), drains gracefully on SIGINT/SIGTERM\n"
               "  client   (--socket path | --port n) [--tenant name]\n"
               "           [--mine s [--deadline-ms n] [--budget-mb n]\n"
               "           [--request-threads n] | --ping | --stats |\n"
               "           --store | --script cmds.txt]; exit code is the\n"
               "           wire outcome's sysexits projection\n"
               "observability flags (any subcommand):\n"
               "  --metrics-json <path>  write metric/span snapshot JSON\n"
               "  --stats-json <path>    alias of --metrics-json\n"
               "  --stats-prom <path>    write Prometheus text exposition\n"
               "  --trace <path>         write Chrome trace_event JSON\n"
               "  --request-log <path>   append one JSON line per served\n"
               "                         request (session subcommand)\n"
               "execution flags (any subcommand):\n"
               "  --threads <n>          mining/compression thread count\n"
               "                         (default: GOGREEN_THREADS or all "
               "cores;\n"
               "                         output is identical at any count)\n"
               "run-governor flags (mine, recycle):\n"
               "  --timeout-ms <n>       deadline; a breach yields a partial\n"
               "                         result (exit 75) exact at the\n"
               "                         reported frontier support\n"
               "  --mem-limit-mb <n>     budget on mining scratch bytes\n");
  return kExitUsage;
}

/// An InvalidArgument produced while reading a file that *opened* is
/// malformed content, not a bad command line: route it to exit 65.
template <typename T>
Result<T> TagDataError(Result<T> loaded) {
  if (!loaded.ok() && loaded.status().code() == StatusCode::kInvalidArgument) {
    g_data_error = true;
  }
  return loaded;
}

Result<gogreen::fpm::TransactionDb> LoadDb(const Args& args) {
  const std::string path = args.Get("i");
  if (path.empty()) {
    return Status::InvalidArgument("missing -i <data.dat>");
  }
  return TagDataError(gogreen::data::ReadDatFile(path));
}

Result<gogreen::fpm::PatternSet> LoadPatterns(const Args& args) {
  const std::string path = args.Get("p");
  if (path.empty()) {
    return Status::InvalidArgument("missing -p <patterns file>");
  }
  if (path.size() > 4 && path.substr(path.size() - 4) == ".txt") {
    return TagDataError(gogreen::fpm::ReadPatternText(path));
  }
  auto loaded = TagDataError(gogreen::fpm::ReadPatternFile(path));
  if (!loaded.ok()) return loaded.status();
  return std::move(loaded->first);
}

Status SavePatterns(const gogreen::fpm::PatternSet& fp, uint64_t min_support,
                    size_t num_transactions, const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".txt") {
    return gogreen::fpm::WritePatternText(fp, path).status();
  }
  gogreen::fpm::PatternSetHeader header;
  header.min_support = min_support;
  header.num_transactions = num_transactions;
  header.source = "gogreen-cli";
  return gogreen::fpm::WritePatternFile(fp, header, path).status();
}

/// Parses -s as a fraction (< 1.0) or an absolute count.
Result<uint64_t> ParseSupport(const Args& args, size_t num_transactions) {
  GOGREEN_ASSIGN_OR_RETURN(const double raw, args.GetDouble("s", 0.01));
  if (raw <= 0) {
    return Status::InvalidArgument("-s must be a positive support");
  }
  if (raw < 1.0) {
    return gogreen::fpm::AbsoluteSupport(raw, num_transactions);
  }
  return static_cast<uint64_t>(raw);
}

gogreen::fpm::MinerKind ParseMiner(const std::string& name) {
  using gogreen::fpm::MinerKind;
  if (name == "apriori") return MinerKind::kApriori;
  if (name == "eclat") return MinerKind::kEclat;
  if (name == "fp-growth") return MinerKind::kFpGrowth;
  if (name == "tree-projection") return MinerKind::kTreeProjection;
  return MinerKind::kHMine;
}

gogreen::core::CompressionStrategy ParseStrategy(const std::string& name) {
  return name == "MLP" ? gogreen::core::CompressionStrategy::kMlp
                       : gogreen::core::CompressionStrategy::kMcp;
}

/// Shared partial-result epilogue for the governed subcommands: records the
/// stop for the process exit code and names the frontier on stdout.
/// Accepts fpm::MineOutcome and fpm::MineResult alike.
template <typename Outcome>
void ReportPartial(const Outcome& outcome) {
  if (!outcome.partial) return;
  g_partial = true;
  std::printf("partial result: %s; frontier support %llu\n",
              outcome.stop_status.ToString().c_str(),
              static_cast<unsigned long long>(outcome.frontier_support));
}

Status CmdMine(const Args& args) {
  GOGREEN_ASSIGN_OR_RETURN(const auto db, LoadDb(args));
  GOGREEN_ASSIGN_OR_RETURN(const uint64_t minsup,
                           ParseSupport(args, db.NumTransactions()));

  auto miner = gogreen::fpm::CreateMiner(ParseMiner(args.Get("a", "h-mine")));
  Timer timer;
  gogreen::fpm::MineRequest request = gogreen::fpm::MineRequest::At(minsup);
  request.run_context = g_governor;
  GOGREEN_ASSIGN_OR_RETURN(const auto outcome, miner->Mine(db, request));
  const auto& fp = outcome.patterns;
  std::printf("%s: %zu patterns at support %llu in %.3fs\n",
              miner->name().c_str(), fp.size(),
              static_cast<unsigned long long>(minsup),
              timer.ElapsedSeconds());
  ReportPartial(outcome);
  std::printf("%s\n", gogreen::fpm::Summarize(fp).ToString().c_str());

  const std::string out = args.Get("o");
  if (!out.empty()) {
    GOGREEN_RETURN_NOT_OK(
        SavePatterns(fp, minsup, db.NumTransactions(), out));
    std::printf("wrote %s\n", out.c_str());
  }
  return Status::OK();
}

Status CmdRecycle(const Args& args) {
  GOGREEN_ASSIGN_OR_RETURN(const auto db, LoadDb(args));
  GOGREEN_ASSIGN_OR_RETURN(const auto fp_old, LoadPatterns(args));
  GOGREEN_ASSIGN_OR_RETURN(const uint64_t minsup,
                           ParseSupport(args, db.NumTransactions()));

  Timer timer;
  gogreen::core::CompressionStats cstats;
  gogreen::core::CompressorOptions copts;
  copts.strategy = ParseStrategy(args.Get("strategy", "MCP"));
  copts.matcher = gogreen::core::MatcherKind::kAuto;
  copts.run_context = g_governor;
  GOGREEN_ASSIGN_OR_RETURN(
      const auto cdb,
      gogreen::core::CompressDatabase(db, fp_old, copts, &cstats));
  const double compress_secs = timer.ElapsedSeconds();

  timer.Restart();
  auto miner = gogreen::core::CreateCompressedMiner(
      gogreen::core::RecycleAlgo::kHMine);
  gogreen::fpm::MineRequest request = gogreen::fpm::MineRequest::At(minsup);
  request.run_context = g_governor;
  GOGREEN_ASSIGN_OR_RETURN(const auto outcome, miner->Mine(cdb, request));
  const auto& fp = outcome.patterns;
  std::printf("recycled %zu patterns -> %zu patterns at support %llu "
              "(compress %.3fs ratio %.3f, mine %.3fs)\n",
              fp_old.size(), fp.size(),
              static_cast<unsigned long long>(minsup), compress_secs,
              cstats.Ratio(), timer.ElapsedSeconds());
  ReportPartial(outcome);

  const std::string out = args.Get("o");
  if (!out.empty()) {
    GOGREEN_RETURN_NOT_OK(
        SavePatterns(fp, minsup, db.NumTransactions(), out));
    std::printf("wrote %s\n", out.c_str());
  }
  return Status::OK();
}

Status CmdCompress(const Args& args) {
  GOGREEN_ASSIGN_OR_RETURN(const auto db, LoadDb(args));
  GOGREEN_ASSIGN_OR_RETURN(const auto fp, LoadPatterns(args));
  const std::string out = args.Get("o");
  if (out.empty()) return Status::InvalidArgument("missing -o");

  gogreen::core::CompressionStats stats;
  GOGREEN_ASSIGN_OR_RETURN(
      const auto cdb,
      gogreen::core::CompressDatabase(
          db, fp,
          {ParseStrategy(args.Get("strategy", "MCP")),
           gogreen::core::MatcherKind::kAuto},
          &stats));
  GOGREEN_ASSIGN_OR_RETURN(const uint64_t written, cdb.WriteTo(out));
  std::printf("compressed %zu tuples into %zu groups, ratio %.3f "
              "(%.3fs); wrote %llu bytes to %s\n",
              db.NumTransactions(), cdb.NumGroups(), stats.Ratio(),
              stats.elapsed_seconds,
              static_cast<unsigned long long>(written), out.c_str());
  return Status::OK();
}

Status CmdRules(const Args& args) {
  GOGREEN_ASSIGN_OR_RETURN(const auto db, LoadDb(args));
  GOGREEN_ASSIGN_OR_RETURN(const auto fp, LoadPatterns(args));

  gogreen::fpm::RuleOptions options;
  GOGREEN_ASSIGN_OR_RETURN(options.min_confidence,
                           args.GetDouble("c", 0.6));
  GOGREEN_ASSIGN_OR_RETURN(options.max_consequent,
                           args.GetInt("max-consequent", 1));
  GOGREEN_ASSIGN_OR_RETURN(
      const auto rules,
      gogreen::fpm::GenerateRules(fp, db.NumTransactions(), options));
  GOGREEN_ASSIGN_OR_RETURN(const uint64_t k, args.GetInt("k", 20));
  std::printf("%zu rules (showing top %zu by confidence):\n", rules.size(),
              std::min<size_t>(k, rules.size()));
  for (size_t i = 0; i < rules.size() && i < k; ++i) {
    std::printf("  %s\n", rules[i].ToString().c_str());
  }
  return Status::OK();
}

Status CmdSummary(const Args& args) {
  GOGREEN_ASSIGN_OR_RETURN(const auto fp, LoadPatterns(args));
  std::printf("all:     %s\n", gogreen::fpm::Summarize(fp).ToString().c_str());
  if (args.Has("closed")) {
    const auto closed = gogreen::fpm::ClosedPatterns(fp);
    std::printf("closed:  %s\n",
                gogreen::fpm::Summarize(closed).ToString().c_str());
  }
  if (args.Has("maximal")) {
    const auto maximal = gogreen::fpm::MaximalPatterns(fp);
    std::printf("maximal: %s\n",
                gogreen::fpm::Summarize(maximal).ToString().c_str());
  }
  return Status::OK();
}

Status CmdGenerate(const Args& args) {
  const std::string out = args.Get("o");
  if (out.empty()) return Status::InvalidArgument("missing -o");
  const std::string kind = args.Get("kind", "quest");
  GOGREEN_ASSIGN_OR_RETURN(const uint64_t n, args.GetInt("n", 100000));

  Result<gogreen::fpm::TransactionDb> db =
      Status::InvalidArgument("unknown --kind: " + kind);
  if (kind == "quest") {
    gogreen::data::QuestConfig cfg;
    cfg.num_transactions = n;
    GOGREEN_ASSIGN_OR_RETURN(cfg.avg_transaction_len,
                             args.GetDouble("avg-len", 10.0));
    GOGREEN_ASSIGN_OR_RETURN(cfg.num_items, args.GetInt("items", 1000));
    GOGREEN_ASSIGN_OR_RETURN(cfg.num_patterns,
                             args.GetInt("patterns", 500));
    GOGREEN_ASSIGN_OR_RETURN(cfg.avg_pattern_len,
                             args.GetDouble("pattern-len", 4.0));
    GOGREEN_ASSIGN_OR_RETURN(cfg.seed, args.GetInt("seed", 1));
    db = gogreen::data::GenerateQuest(cfg);
  } else if (kind == "dense") {
    GOGREEN_ASSIGN_OR_RETURN(const uint64_t attrs,
                             args.GetInt("attrs", 20));
    GOGREEN_ASSIGN_OR_RETURN(const uint64_t values,
                             args.GetInt("values", 5));
    GOGREEN_ASSIGN_OR_RETURN(const uint64_t seed, args.GetInt("seed", 1));
    db = gogreen::data::GenerateDense(
        gogreen::data::DenseConfig::Uniform(n, attrs, values, seed));
  }
  GOGREEN_RETURN_NOT_OK(db.status());
  GOGREEN_ASSIGN_OR_RETURN(const uint64_t written,
                           gogreen::data::WriteDatFile(*db, out));
  std::printf("generated %zu transactions (avg len %.1f) -> %s (%llu "
              "bytes)\n",
              db->NumTransactions(), db->AvgLength(), out.c_str(),
              static_cast<unsigned long long>(written));
  return Status::OK();
}

Status CmdStats(const Args& args) {
  GOGREEN_ASSIGN_OR_RETURN(const auto db, LoadDb(args));
  std::printf("transactions: %zu\n", db.NumTransactions());
  std::printf("avg length:   %.2f\n", db.AvgLength());
  std::printf("total items:  %zu\n", db.TotalItems());
  std::printf("distinct:     %zu (universe %zu)\n", db.NumDistinctItems(),
              db.ItemUniverseSize());
  return Status::OK();
}

/// The serving stack `session` and `serve` share: the MiningService, its
/// optional AdmissionController front door, and the store directory it
/// loads on start / persists on exit.
struct ServiceSetup {
  std::unique_ptr<gogreen::serve::MiningService> service;
  std::unique_ptr<gogreen::serve::AdmissionController> admission;
  std::string store_dir;
};

Result<ServiceSetup> BuildService(const Args& args) {
  GOGREEN_ASSIGN_OR_RETURN(auto db, LoadDb(args));

  gogreen::serve::ServiceOptions options;
  options.base_miner = ParseMiner(args.Get("a", "h-mine"));
  options.strategy = ParseStrategy(args.Get("strategy", "MCP"));
  GOGREEN_ASSIGN_OR_RETURN(const uint64_t store_mb,
                           args.GetInt("store-mb", 64));
  if (store_mb < 1) {
    return Status::InvalidArgument("--store-mb must be >= 1");
  }
  options.store.byte_budget = static_cast<size_t>(store_mb) << 20;
  // The dataset id keys the pattern store (and its persisted files); it
  // defaults to the input path, so the same file round-trips naturally.
  std::string dataset_id = args.Get("dataset-id");
  if (dataset_id.empty()) dataset_id = args.Get("i");

  ServiceSetup setup;
  setup.service = std::make_unique<gogreen::serve::MiningService>(
      std::move(db), dataset_id, options);

  setup.store_dir = args.Get("store-dir");
  if (!setup.store_dir.empty()) {
    // A missing or empty directory just means a cold store.
    size_t skipped = 0;
    const Status loaded =
        setup.service->store().LoadFrom(setup.store_dir, &skipped);
    if (loaded.ok()) {
      std::printf("store: loaded %zu entries from %s (%zu skipped)\n",
                  setup.service->store().stats().entries,
                  setup.store_dir.c_str(), skipped);
    }
  }

  // Admission control is opt-in: arming either flag puts the bounded
  // queue, tenant quotas, breaker, and degraded serves in front of every
  // mine served.
  if (args.Has("max-queue") || args.Has("quota-qps")) {
    gogreen::serve::AdmissionOptions admission_options;
    GOGREEN_ASSIGN_OR_RETURN(const uint64_t max_queue,
                             args.GetInt("max-queue", 16));
    admission_options.max_queue = static_cast<size_t>(max_queue);
    GOGREEN_ASSIGN_OR_RETURN(const double quota_qps,
                             args.GetDouble("quota-qps", 0.0));
    if (quota_qps < 0.0) {
      return Status::InvalidArgument("--quota-qps must be >= 0");
    }
    admission_options.default_quota.qps = quota_qps;
    setup.admission = std::make_unique<gogreen::serve::AdmissionController>(
        *setup.service, admission_options);
  }
  return setup;
}

/// Persists the store on the way out (session end / daemon shutdown).
Status SaveStore(gogreen::serve::MiningService& service,
                 const std::string& store_dir) {
  if (store_dir.empty()) return Status::OK();
  GOGREEN_RETURN_NOT_OK(service.store().SaveTo(store_dir));
  std::printf("store: saved %zu entries to %s\n",
              service.store().stats().entries, store_dir.c_str());
  return Status::OK();
}

Status CmdSession(const Args& args) {
  GOGREEN_ASSIGN_OR_RETURN(ServiceSetup setup, BuildService(args));
  gogreen::serve::MiningService& service = *setup.service;

  gogreen::serve::SessionConfig config;
  config.tenant = args.Get("tenant");
  config.admission = setup.admission.get();
  Result<gogreen::serve::SessionSummary> summary =
      Status::Internal("session did not run");
  const std::string script = args.Get("script");
  if (!script.empty()) {
    std::ifstream in(script);
    if (!in.is_open()) {
      return Status::IOError("cannot open script: " + script);
    }
    summary = gogreen::serve::RunSession(service, in, std::cout, config);
  } else {
    config.interactive = ::isatty(STDIN_FILENO) != 0;
    summary = gogreen::serve::RunSession(service, std::cin, std::cout,
                                         config);
  }
  GOGREEN_RETURN_NOT_OK(summary.status());

  GOGREEN_RETURN_NOT_OK(SaveStore(service, setup.store_dir));
  std::printf("session: %llu commands, %llu mines (%llu partial, %llu "
              "errors)\n",
              static_cast<unsigned long long>(summary->commands),
              static_cast<unsigned long long>(summary->mines),
              static_cast<unsigned long long>(summary->partials),
              static_cast<unsigned long long>(summary->errors));
  if (summary->partials > 0) g_partial = true;
  return Status::OK();
}

/// SIGINT/SIGTERM flag for `serve`: the handler only sets a flag; the
/// serving loop polls it and runs the graceful drain outside signal
/// context.
volatile std::sig_atomic_t g_shutdown_requested = 0;

void RequestShutdown(int /*signo*/) { g_shutdown_requested = 1; }

Status CmdServe(const Args& args) {
  GOGREEN_ASSIGN_OR_RETURN(ServiceSetup setup, BuildService(args));
  gogreen::serve::MiningService& service = *setup.service;

  gogreen::net::ServerOptions options;
  options.unix_path = args.Get("socket");
  if (args.Has("port")) {
    GOGREEN_ASSIGN_OR_RETURN(const uint64_t port, args.GetInt("port", 0));
    if (port > 65535) {
      return Status::InvalidArgument("--port must be <= 65535");
    }
    options.tcp_port = static_cast<int>(port);
  }
  GOGREEN_ASSIGN_OR_RETURN(const uint64_t max_connections,
                           args.GetInt("max-connections", 8));
  if (max_connections < 1 || max_connections > 64) {
    return Status::InvalidArgument(
        "--max-connections must be between 1 and 64");
  }
  options.max_connections = static_cast<size_t>(max_connections);
  GOGREEN_ASSIGN_OR_RETURN(options.mine_hold_ms, args.GetInt("hold-ms", 0));

  gogreen::net::Server server(service, setup.admission.get(), options);
  GOGREEN_RETURN_NOT_OK(server.Start());
  if (!options.unix_path.empty()) {
    std::printf("serving %s on %s\n", service.dataset_id().c_str(),
                options.unix_path.c_str());
  } else {
    std::printf("serving %s on port %d\n", service.dataset_id().c_str(),
                server.port());
  }
  std::fflush(stdout);

  g_shutdown_requested = 0;
  std::signal(SIGINT, RequestShutdown);
  std::signal(SIGTERM, RequestShutdown);
  while (g_shutdown_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);

  server.Stop();  // Drains in-flight requests before returning.
  GOGREEN_RETURN_NOT_OK(SaveStore(service, setup.store_dir));
  std::printf("serve: drained and stopped\n");
  return Status::OK();
}

/// Exit code chosen by `client` from the wire outcome (see
/// ExitCodeForOutcome); -1 while no one-shot response has decided one.
int g_exit_override = -1;

Status CmdClient(const Args& args) {
  Result<gogreen::net::Client> connected =
      Status::InvalidArgument("client needs one of --socket and --port");
  const std::string socket_path = args.Get("socket");
  if (!socket_path.empty()) {
    connected = gogreen::net::Client::ConnectUnix(socket_path);
  } else if (args.Has("port")) {
    GOGREEN_ASSIGN_OR_RETURN(const uint64_t port, args.GetInt("port", 0));
    connected = gogreen::net::Client::ConnectTcp(static_cast<int>(port));
  }
  GOGREEN_RETURN_NOT_OK(connected.status());
  gogreen::net::Client& client = connected.value();

  // Bind the connection's tenant before anything else runs under it.
  if (args.Has("tenant")) {
    gogreen::net::WireRequest bind;
    bind.verb = gogreen::net::Verb::kTenant;
    bind.tenant = args.Get("tenant");
    GOGREEN_ASSIGN_OR_RETURN(const auto bound, client.Call(bind));
    GOGREEN_RETURN_NOT_OK(bound.ToStatus());
  }

  // One-shot verbs: exactly one request, exit code from the outcome.
  const bool one_shot = args.Has("mine") || args.Has("ping") ||
                        args.Has("stats") || args.Has("store");
  if (one_shot) {
    gogreen::net::WireRequest request;
    if (args.Has("mine")) {
      request.verb = gogreen::net::Verb::kMine;
      GOGREEN_ASSIGN_OR_RETURN(request.support,
                               args.GetDouble("mine", 0.0));
      GOGREEN_ASSIGN_OR_RETURN(request.deadline_ms,
                               args.GetInt("deadline-ms", 0));
      GOGREEN_ASSIGN_OR_RETURN(request.budget_mb,
                               args.GetInt("budget-mb", 0));
      GOGREEN_ASSIGN_OR_RETURN(request.threads,
                               args.GetInt("request-threads", 0));
    } else if (args.Has("ping")) {
      request.verb = gogreen::net::Verb::kPing;
    } else if (args.Has("stats")) {
      // The daemon-wide metrics snapshot (the REPL's `\stats` view).
      request.verb = gogreen::net::Verb::kMetrics;
    } else {
      request.verb = gogreen::net::Verb::kStore;
    }
    GOGREEN_ASSIGN_OR_RETURN(const auto resp, client.Call(request));
    const Status outcome_status = resp.ToStatus();
    if (!outcome_status.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   outcome_status.ToString().c_str());
      if (resp.retry_after_ms > 0) {
        std::fprintf(stderr, "retry-after-ms: %llu\n",
                     static_cast<unsigned long long>(resp.retry_after_ms));
      }
    } else if (request.verb == gogreen::net::Verb::kMine) {
      std::fputs(gogreen::serve::FormatMineLine(resp).c_str(), stdout);
    } else if (request.verb == gogreen::net::Verb::kPing) {
      std::printf("pong\n");
    } else {
      std::fputs(resp.body.c_str(), stdout);
    }
    g_exit_override =
        gogreen::ExitCodeForOutcome(resp.outcome, resp.error_code);
    return Status::OK();
  }

  // Script / interactive mode: the session command language, executed
  // remotely. save/load stay local-only and fail with a typed error.
  gogreen::serve::SessionConfig config;
  const gogreen::serve::WireExecutor executor =
      [&client](const gogreen::net::WireRequest& request) {
        return client.Call(request);
      };
  Result<gogreen::serve::SessionSummary> summary =
      Status::Internal("client session did not run");
  const std::string script = args.Get("script");
  if (!script.empty()) {
    std::ifstream in(script);
    if (!in.is_open()) {
      return Status::IOError("cannot open script: " + script);
    }
    summary = gogreen::serve::RunWireSession(executor, nullptr, in,
                                             std::cout, config);
  } else {
    config.interactive = ::isatty(STDIN_FILENO) != 0;
    summary = gogreen::serve::RunWireSession(executor, nullptr, std::cin,
                                             std::cout, config);
  }
  GOGREEN_RETURN_NOT_OK(summary.status());
  std::printf("client: %llu commands, %llu mines (%llu partial, %llu "
              "errors)\n",
              static_cast<unsigned long long>(summary->commands),
              static_cast<unsigned long long>(summary->mines),
              static_cast<unsigned long long>(summary->partials),
              static_cast<unsigned long long>(summary->errors));
  if (summary->partials > 0) g_partial = true;
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const Args args(argc, argv);
  const std::string cmd = argv[1];

  // Observability sinks: when any sink flag is present, turn the span
  // tracer on before the command runs (full event recording only when a
  // trace file was requested; other sinks just keep aggregates — the
  // request log needs them for its per-request phase timings).
  std::string metrics_path = args.Get("metrics-json");
  if (metrics_path.empty()) metrics_path = args.Get("stats-json");
  const std::string prom_path = args.Get("stats-prom");
  const std::string trace_path = args.Get("trace");
  const std::string request_log_path = args.Get("request-log");
  if (!metrics_path.empty() || !prom_path.empty() || !trace_path.empty() ||
      !request_log_path.empty()) {
    gogreen::obs::Tracer::Global().Enable(!trace_path.empty());
  }
  if (!request_log_path.empty()) {
    const Status attached =
        gogreen::obs::RequestLog::Global().AttachSink(request_log_path);
    if (!attached.ok()) return Fail(attached);
  }

  // Parallelism: --threads beats GOGREEN_THREADS beats hardware default.
  if (args.Has("threads")) {
    const auto threads = args.GetInt("threads", 0);
    if (!threads.ok()) return Fail(threads.status());
    if (*threads < 1 || *threads > 1024) {
      return Fail(Status::InvalidArgument(
          "--threads must be between 1 and 1024"));
    }
    gogreen::ThreadPool::SetGlobalThreads(static_cast<size_t>(*threads));
  }

  // Run governor: either flag arms a context that mine/recycle observe.
  // --timeout-ms 0 is a deadline that is already due — useful for testing
  // the partial-result path deterministically.
  gogreen::RunContext run_ctx;
  if (args.Has("timeout-ms") || args.Has("mem-limit-mb")) {
    const auto timeout_ms = args.GetInt("timeout-ms", 0);
    if (!timeout_ms.ok()) return Fail(timeout_ms.status());
    const auto mem_mb = args.GetInt("mem-limit-mb", 0);
    if (!mem_mb.ok()) return Fail(mem_mb.status());
    if (args.Has("timeout-ms")) {
      run_ctx.SetDeadlineAfterMillis(static_cast<int64_t>(*timeout_ms));
    }
    if (*mem_mb > 0) {
      run_ctx.SetMemoryBudget(static_cast<size_t>(*mem_mb) << 20);
    }
    g_governor = &run_ctx;
  }

  Status status;
  if (cmd == "mine") {
    status = CmdMine(args);
  } else if (cmd == "recycle") {
    status = CmdRecycle(args);
  } else if (cmd == "compress") {
    status = CmdCompress(args);
  } else if (cmd == "rules") {
    status = CmdRules(args);
  } else if (cmd == "summary") {
    status = CmdSummary(args);
  } else if (cmd == "generate") {
    status = CmdGenerate(args);
  } else if (cmd == "stats") {
    status = CmdStats(args);
  } else if (cmd == "session") {
    status = CmdSession(args);
  } else if (cmd == "serve") {
    status = CmdServe(args);
  } else if (cmd == "client") {
    status = CmdClient(args);
  } else {
    return Usage();
  }

  int rc = status.ok() ? ExitCodeFor(status) : Fail(status);
  // A one-shot `client` call answers with a wire outcome; its sysexits
  // projection wins over the (OK) command status.
  if (status.ok() && g_exit_override >= 0) rc = g_exit_override;
  if (!metrics_path.empty()) {
    const Status w = gogreen::obs::WriteMetricsJson(metrics_path);
    if (!w.ok()) {
      rc = Fail(w);
    } else {
      std::fprintf(stderr, "wrote metrics to %s\n", metrics_path.c_str());
    }
  }
  if (!prom_path.empty()) {
    const Status w = gogreen::obs::WriteMetricsProm(prom_path);
    if (!w.ok()) {
      rc = Fail(w);
    } else {
      std::fprintf(stderr, "wrote metrics to %s\n", prom_path.c_str());
    }
  }
  if (!trace_path.empty()) {
    const Status w =
        gogreen::obs::Tracer::Global().WriteChromeTrace(trace_path);
    if (!w.ok()) {
      rc = Fail(w);
    } else {
      std::fprintf(stderr, "wrote trace to %s\n", trace_path.c_str());
    }
  }
  if (!request_log_path.empty()) {
    gogreen::obs::RequestLog::Global().DetachSink();
  }
  return rc;
}
