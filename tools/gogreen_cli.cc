// gogreen — command-line front end for the library.
//
//   gogreen mine     -i data.dat -s 0.02 [-a h-mine] [-o patterns.bin]
//   gogreen recycle  -i data.dat -p patterns.bin -s 0.01 [--strategy MCP]
//   gogreen compress -i data.dat -p patterns.bin -o data.cdb
//   gogreen rules    -i data.dat -p patterns.bin [-c 0.6]
//   gogreen summary  -p patterns.bin [--closed|--maximal]
//   gogreen generate --kind quest|dense -n 100000 -o data.dat [...]
//   gogreen stats    -i data.dat
//
// Patterns files use the binary format of fpm/pattern_io.h (or the FIMI
// text format when the file name ends in .txt).

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "core/recycler.h"
#include "data/dat_io.h"
#include "data/dense_gen.h"
#include "data/quest_gen.h"
#include "fpm/miner.h"
#include "fpm/pattern_io.h"
#include "fpm/rules.h"
#include "fpm/summarize.h"
#include "util/timer.h"

namespace {

using gogreen::Result;
using gogreen::Status;
using gogreen::Timer;

/// Minimal flag parser: --key value / -k value pairs plus bare switches.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind('-', 0) != 0) continue;
      key = key.substr(key.rfind('-') + 1);
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key, const std::string& dflt = "") const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }

  double GetDouble(const std::string& key, double dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : std::stod(it->second);
  }

  uint64_t GetInt(const std::string& key, uint64_t dflt) const {
    const auto it = values_.find(key);
    return it == values_.end() ? dflt : std::stoull(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: gogreen <mine|recycle|compress|rules|summary|"
               "generate|stats> [flags]\n"
               "  mine     -i data.dat -s <frac|count> [-a apriori|eclat|"
               "h-mine|fp-growth|tree-projection] [-o patterns.{bin,txt}]\n"
               "  recycle  -i data.dat -p patterns.bin -s <frac|count> "
               "[--strategy MCP|MLP] [-o out.bin]\n"
               "  compress -i data.dat -p patterns.bin -o data.cdb "
               "[--strategy MCP|MLP]\n"
               "  rules    -i data.dat -p patterns.bin [-c 0.6] [-k 20]\n"
               "  summary  -p patterns.bin [--closed] [--maximal]\n"
               "  generate --kind quest|dense -n <tuples> -o data.dat\n"
               "  stats    -i data.dat\n");
  return 2;
}

Result<gogreen::fpm::TransactionDb> LoadDb(const Args& args) {
  const std::string path = args.Get("i");
  if (path.empty()) {
    return Status::InvalidArgument("missing -i <data.dat>");
  }
  return gogreen::data::ReadDatFile(path);
}

Result<gogreen::fpm::PatternSet> LoadPatterns(const Args& args) {
  const std::string path = args.Get("p");
  if (path.empty()) {
    return Status::InvalidArgument("missing -p <patterns file>");
  }
  if (path.size() > 4 && path.substr(path.size() - 4) == ".txt") {
    return gogreen::fpm::ReadPatternText(path);
  }
  auto loaded = gogreen::fpm::ReadPatternFile(path);
  if (!loaded.ok()) return loaded.status();
  return std::move(loaded->first);
}

Status SavePatterns(const gogreen::fpm::PatternSet& fp, uint64_t min_support,
                    size_t num_transactions, const std::string& path) {
  if (path.size() > 4 && path.substr(path.size() - 4) == ".txt") {
    return gogreen::fpm::WritePatternText(fp, path).status();
  }
  gogreen::fpm::PatternSetHeader header;
  header.min_support = min_support;
  header.num_transactions = num_transactions;
  header.source = "gogreen-cli";
  return gogreen::fpm::WritePatternFile(fp, header, path).status();
}

/// Parses -s as a fraction (< 1.0) or an absolute count.
uint64_t ParseSupport(const Args& args, size_t num_transactions) {
  const double raw = args.GetDouble("s", 0.01);
  if (raw <= 0) return 0;
  if (raw < 1.0) {
    return gogreen::fpm::AbsoluteSupport(raw, num_transactions);
  }
  return static_cast<uint64_t>(raw);
}

gogreen::fpm::MinerKind ParseMiner(const std::string& name) {
  using gogreen::fpm::MinerKind;
  if (name == "apriori") return MinerKind::kApriori;
  if (name == "eclat") return MinerKind::kEclat;
  if (name == "fp-growth") return MinerKind::kFpGrowth;
  if (name == "tree-projection") return MinerKind::kTreeProjection;
  return MinerKind::kHMine;
}

gogreen::core::CompressionStrategy ParseStrategy(const std::string& name) {
  return name == "MLP" ? gogreen::core::CompressionStrategy::kMlp
                       : gogreen::core::CompressionStrategy::kMcp;
}

int CmdMine(const Args& args) {
  auto db = LoadDb(args);
  if (!db.ok()) return Fail(db.status());
  const uint64_t minsup = ParseSupport(args, db->NumTransactions());
  if (minsup == 0) return Fail(Status::InvalidArgument("bad -s"));

  auto miner = gogreen::fpm::CreateMiner(ParseMiner(args.Get("a", "h-mine")));
  Timer timer;
  auto fp = miner->Mine(*db, minsup);
  if (!fp.ok()) return Fail(fp.status());
  std::printf("%s: %zu patterns at support %llu in %.3fs\n",
              miner->name().c_str(), fp->size(),
              static_cast<unsigned long long>(minsup),
              timer.ElapsedSeconds());
  std::printf("%s\n", gogreen::fpm::Summarize(*fp).ToString().c_str());

  const std::string out = args.Get("o");
  if (!out.empty()) {
    const Status st = SavePatterns(*fp, minsup, db->NumTransactions(), out);
    if (!st.ok()) return Fail(st);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int CmdRecycle(const Args& args) {
  auto db = LoadDb(args);
  if (!db.ok()) return Fail(db.status());
  auto fp_old = LoadPatterns(args);
  if (!fp_old.ok()) return Fail(fp_old.status());
  const uint64_t minsup = ParseSupport(args, db->NumTransactions());
  if (minsup == 0) return Fail(Status::InvalidArgument("bad -s"));

  Timer timer;
  gogreen::core::CompressionStats cstats;
  auto cdb = gogreen::core::CompressDatabase(
      *db, *fp_old,
      {ParseStrategy(args.Get("strategy", "MCP")),
       gogreen::core::MatcherKind::kAuto},
      &cstats);
  if (!cdb.ok()) return Fail(cdb.status());
  const double compress_secs = timer.ElapsedSeconds();

  timer.Restart();
  auto miner = gogreen::core::CreateCompressedMiner(
      gogreen::core::RecycleAlgo::kHMine);
  auto fp = miner->MineCompressed(*cdb, minsup);
  if (!fp.ok()) return Fail(fp.status());
  std::printf("recycled %zu patterns -> %zu patterns at support %llu "
              "(compress %.3fs ratio %.3f, mine %.3fs)\n",
              fp_old->size(), fp->size(),
              static_cast<unsigned long long>(minsup), compress_secs,
              cstats.Ratio(), timer.ElapsedSeconds());

  const std::string out = args.Get("o");
  if (!out.empty()) {
    const Status st = SavePatterns(*fp, minsup, db->NumTransactions(), out);
    if (!st.ok()) return Fail(st);
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}

int CmdCompress(const Args& args) {
  auto db = LoadDb(args);
  if (!db.ok()) return Fail(db.status());
  auto fp = LoadPatterns(args);
  if (!fp.ok()) return Fail(fp.status());
  const std::string out = args.Get("o");
  if (out.empty()) return Fail(Status::InvalidArgument("missing -o"));

  gogreen::core::CompressionStats stats;
  auto cdb = gogreen::core::CompressDatabase(
      *db, *fp,
      {ParseStrategy(args.Get("strategy", "MCP")),
       gogreen::core::MatcherKind::kAuto},
      &stats);
  if (!cdb.ok()) return Fail(cdb.status());
  auto written = cdb->WriteTo(out);
  if (!written.ok()) return Fail(written.status());
  std::printf("compressed %zu tuples into %zu groups, ratio %.3f "
              "(%.3fs); wrote %llu bytes to %s\n",
              db->NumTransactions(), cdb->NumGroups(), stats.Ratio(),
              stats.elapsed_seconds,
              static_cast<unsigned long long>(written.value()), out.c_str());
  return 0;
}

int CmdRules(const Args& args) {
  auto db = LoadDb(args);
  if (!db.ok()) return Fail(db.status());
  auto fp = LoadPatterns(args);
  if (!fp.ok()) return Fail(fp.status());

  gogreen::fpm::RuleOptions options;
  options.min_confidence = args.GetDouble("c", 0.6);
  options.max_consequent = args.GetInt("max-consequent", 1);
  auto rules = gogreen::fpm::GenerateRules(*fp, db->NumTransactions(),
                                           options);
  if (!rules.ok()) return Fail(rules.status());
  const size_t k = args.GetInt("k", 20);
  std::printf("%zu rules (showing top %zu by confidence):\n", rules->size(),
              std::min(k, rules->size()));
  for (size_t i = 0; i < rules->size() && i < k; ++i) {
    std::printf("  %s\n", (*rules)[i].ToString().c_str());
  }
  return 0;
}

int CmdSummary(const Args& args) {
  auto fp = LoadPatterns(args);
  if (!fp.ok()) return Fail(fp.status());
  std::printf("all:     %s\n", gogreen::fpm::Summarize(*fp).ToString().c_str());
  if (args.Has("closed")) {
    const auto closed = gogreen::fpm::ClosedPatterns(*fp);
    std::printf("closed:  %s\n",
                gogreen::fpm::Summarize(closed).ToString().c_str());
  }
  if (args.Has("maximal")) {
    const auto maximal = gogreen::fpm::MaximalPatterns(*fp);
    std::printf("maximal: %s\n",
                gogreen::fpm::Summarize(maximal).ToString().c_str());
  }
  return 0;
}

int CmdGenerate(const Args& args) {
  const std::string out = args.Get("o");
  if (out.empty()) return Fail(Status::InvalidArgument("missing -o"));
  const std::string kind = args.Get("kind", "quest");
  const size_t n = args.GetInt("n", 100000);

  Result<gogreen::fpm::TransactionDb> db =
      Status::InvalidArgument("unknown --kind: " + kind);
  if (kind == "quest") {
    gogreen::data::QuestConfig cfg;
    cfg.num_transactions = n;
    cfg.avg_transaction_len = args.GetDouble("avg-len", 10.0);
    cfg.num_items = args.GetInt("items", 1000);
    cfg.num_patterns = args.GetInt("patterns", 500);
    cfg.avg_pattern_len = args.GetDouble("pattern-len", 4.0);
    cfg.seed = args.GetInt("seed", 1);
    db = gogreen::data::GenerateQuest(cfg);
  } else if (kind == "dense") {
    gogreen::data::DenseConfig cfg = gogreen::data::DenseConfig::Uniform(
        n, args.GetInt("attrs", 20), args.GetInt("values", 5),
        args.GetInt("seed", 1));
    db = gogreen::data::GenerateDense(cfg);
  }
  if (!db.ok()) return Fail(db.status());
  auto written = gogreen::data::WriteDatFile(*db, out);
  if (!written.ok()) return Fail(written.status());
  std::printf("generated %zu transactions (avg len %.1f) -> %s (%llu "
              "bytes)\n",
              db->NumTransactions(), db->AvgLength(), out.c_str(),
              static_cast<unsigned long long>(written.value()));
  return 0;
}

int CmdStats(const Args& args) {
  auto db = LoadDb(args);
  if (!db.ok()) return Fail(db.status());
  std::printf("transactions: %zu\n", db->NumTransactions());
  std::printf("avg length:   %.2f\n", db->AvgLength());
  std::printf("total items:  %zu\n", db->TotalItems());
  std::printf("distinct:     %zu (universe %zu)\n", db->NumDistinctItems(),
              db->ItemUniverseSize());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const Args args(argc, argv);
  const std::string cmd = argv[1];
  if (cmd == "mine") return CmdMine(args);
  if (cmd == "recycle") return CmdRecycle(args);
  if (cmd == "compress") return CmdCompress(args);
  if (cmd == "rules") return CmdRules(args);
  if (cmd == "summary") return CmdSummary(args);
  if (cmd == "generate") return CmdGenerate(args);
  if (cmd == "stats") return CmdStats(args);
  return Usage();
}
