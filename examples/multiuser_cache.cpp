// Multi-user scenario (Section 2: "when there are many users in a data
// mining system, the frequent patterns discovered by one user also provide
// opportunity for the others to recycle"). A tiny shared pattern store keeps
// the best (lowest-threshold) complete set per dataset; new sessions seed
// their cache from it and immediately enjoy the recycled path.
//
// Build & run:  ./build/examples/multiuser_cache

#include <cstdio>
#include <map>
#include <string>

#include "core/recycler.h"
#include "data/quest_gen.h"
#include "fpm/miner.h"
#include "util/timer.h"

namespace {

/// The shared store: dataset key -> (min support, complete pattern set).
/// A production system would persist this; a map suffices to demonstrate
/// the sharing protocol.
class SharedPatternStore {
 public:
  void Publish(const std::string& key, uint64_t min_support,
               gogreen::fpm::PatternSet fp) {
    auto it = entries_.find(key);
    // Keep the most informative (lowest-threshold) set.
    if (it == entries_.end() || min_support < it->second.min_support) {
      entries_[key] = {min_support, std::move(fp)};
    }
  }

  /// Seeds `session` from the store; returns true if something was found.
  bool Seed(const std::string& key,
            gogreen::core::RecyclingSession* session) const {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    session->SeedCache(it->second.fp, it->second.min_support);
    return true;
  }

 private:
  struct Entry {
    uint64_t min_support;
    gogreen::fpm::PatternSet fp;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace

int main() {
  using gogreen::Timer;
  using gogreen::core::MiningPathName;
  using gogreen::core::RecyclingSession;

  gogreen::data::QuestConfig cfg;
  cfg.num_transactions = 150000;
  cfg.avg_transaction_len = 12.0;
  cfg.num_items = 4000;
  cfg.num_patterns = 150;
  cfg.avg_pattern_len = 6.0;
  cfg.max_pattern_len = 9;
  cfg.weight_skew = 2.2;
  cfg.corruption_mean = 0.15;
  cfg.seed = 20040405;
  auto db_result = gogreen::data::GenerateQuest(cfg);
  if (!db_result.ok()) return 1;
  const gogreen::fpm::TransactionDb db = std::move(db_result).value();
  const std::string kDatasetKey = "sales-2026-q2";

  SharedPatternStore store;

  // --- User A explores first (pays the full initial cost). ---
  RecyclingSession alice(db);
  Timer ta;
  auto ra = alice.MineFraction(0.03);
  if (!ra.ok()) return 1;
  std::printf("alice  : support 3.0%% -> %6zu patterns in %.3fs (path=%s)\n",
              ra->size(), ta.ElapsedSeconds(),
              MiningPathName(alice.last_stats().path));
  store.Publish(kDatasetKey, alice.cached_min_support(), *ra);

  // --- User B arrives later and wants a deeper cut. ---
  RecyclingSession bob(db);
  const bool seeded = store.Seed(kDatasetKey, &bob);
  Timer tb;
  auto rb = bob.MineFraction(0.01);
  const double bob_secs = tb.ElapsedSeconds();
  if (!rb.ok()) return 1;
  std::printf("bob    : support 1.0%% -> %6zu patterns in %.3fs (path=%s, "
              "store hit=%s)\n",
              rb->size(), bob_secs,
              MiningPathName(bob.last_stats().path), seeded ? "yes" : "no");
  store.Publish(kDatasetKey, bob.cached_min_support(), *rb);

  // --- User C benefits from Bob's deeper run: a pure cache filter. ---
  RecyclingSession carol(db);
  store.Seed(kDatasetKey, &carol);
  Timer tc;
  auto rc = carol.MineFraction(0.02);
  if (!rc.ok()) return 1;
  std::printf("carol  : support 2.0%% -> %6zu patterns in %.3fs (path=%s)\n",
              rc->size(), tc.ElapsedSeconds(),
              MiningPathName(carol.last_stats().path));

  // --- Control: what user B would have paid without the store. ---
  gogreen::core::RecyclerOptions scratch;
  scratch.enable_recycling = false;
  RecyclingSession lonely(db, scratch);
  Timer tl;
  auto rl = lonely.MineFraction(0.01);
  if (!rl.ok()) return 1;
  const double lonely_secs = tl.ElapsedSeconds();
  std::printf("control: support 1.0%% without sharing -> %.3fs "
              "(bob saved %.1fx)\n",
              lonely_secs, bob_secs > 0 ? lonely_secs / bob_secs : 0.0);

  if (rb->size() != rl->size()) {
    std::fprintf(stderr, "MISMATCH between shared and direct results\n");
    return 2;
  }
  return 0;
}
