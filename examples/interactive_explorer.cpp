// Interactive exploration scenario (the introduction's motivating use
// case): an analyst working over a synthetic market-basket dataset keeps
// refining the mining constraints — lowering the support when results are
// too sparse, raising it or adding constraints when they are too noisy.
// The RecyclingSession transparently picks the cheapest correct path per
// round (filter / recycle / initial) and this example prints what it did.
//
// Build & run:  ./build/examples/interactive_explorer

#include <cstdio>

#include "core/recycler.h"
#include "data/quest_gen.h"
#include "fpm/miner.h"

namespace {

void Report(const char* request, const gogreen::core::RecyclingSession& s,
            size_t returned) {
  const auto& st = s.last_stats();
  std::printf("%-44s -> %6zu patterns | path=%-8s mine=%.3fs", request,
              returned, gogreen::core::MiningPathName(st.path),
              st.mine_seconds);
  if (st.path == gogreen::core::MiningPath::kRecycled) {
    std::printf(" compress=%.3fs ratio=%.2f", st.compress_seconds,
                st.compression_ratio);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using gogreen::core::ConstraintSet;
  using gogreen::core::RecyclingSession;

  // A synthetic "retail basket" dataset: 100k baskets over 5k products.
  gogreen::data::QuestConfig cfg;
  cfg.num_transactions = 100000;
  cfg.avg_transaction_len = 12.0;
  cfg.num_items = 5000;
  cfg.num_patterns = 200;
  cfg.avg_pattern_len = 5.0;
  cfg.max_pattern_len = 9;
  cfg.weight_skew = 2.0;
  cfg.corruption_mean = 0.2;
  cfg.seed = 7;
  auto db = gogreen::data::GenerateQuest(cfg);
  if (!db.ok()) {
    std::fprintf(stderr, "%s\n", db.status().ToString().c_str());
    return 1;
  }
  std::printf("dataset: %zu baskets, avg %.1f items\n\n",
              db->NumTransactions(), db->AvgLength());

  RecyclingSession session(std::move(db).value());
  const size_t n = session.db().NumTransactions();

  // Round 1: a first look at 5% support.
  auto r1 = session.MineFraction(0.05);
  if (!r1.ok()) return 1;
  Report("mine at support 5%", session, r1->size());

  // Round 2: too few results -> relax to 2%. (Recycled!)
  auto r2 = session.MineFraction(0.02);
  if (!r2.ok()) return 1;
  Report("relax support to 2%", session, r2->size());

  // Round 3: too many -> tighten back to 3%. (Pure cache filter.)
  auto r3 = session.MineFraction(0.03);
  if (!r3.ok()) return 1;
  Report("tighten support to 3%", session, r3->size());

  // Round 4: only long associations, at least 3 items. (Filter again.)
  ConstraintSet c4(gogreen::fpm::AbsoluteSupport(0.03, n));
  c4.Add(gogreen::core::MakeMinLength(3));
  auto r4 = session.Mine(c4);
  if (!r4.ok()) return 1;
  Report("add constraint |X| >= 3", session, r4->size());

  // Round 5: relax support once more with the constraint kept. (Recycled.)
  ConstraintSet c5(gogreen::fpm::AbsoluteSupport(0.01, n));
  c5.Add(gogreen::core::MakeMinLength(3));
  auto r5 = session.Mine(c5);
  if (!r5.ok()) return 1;
  Report("relax support to 1%, keep |X| >= 3", session, r5->size());

  // Show a few of the final long patterns.
  std::printf("\nsample results:\n");
  size_t shown = 0;
  for (const auto& p : *r5) {
    if (p.size() >= 4 && shown < 5) {
      std::printf("  %s\n", p.ToString().c_str());
      ++shown;
    }
  }
  return 0;
}
