// Incremental updates scenario: a transaction log grows by a daily batch;
// each evening the complete pattern set is refreshed. The IncrementalSession
// recycles yesterday's patterns as compression units — exact results, much
// less work than re-mining from scratch, and (unlike negative-border
// incremental miners) it tolerates deletions and threshold changes too.
//
// Build & run:  ./build/examples/incremental_updates

#include <cstdio>

#include "core/incremental.h"
#include "data/quest_gen.h"
#include "fpm/miner.h"
#include "util/timer.h"

namespace {

gogreen::fpm::TransactionDb DayBatch(int day, size_t rows) {
  gogreen::data::QuestConfig cfg;
  cfg.num_transactions = rows;
  cfg.avg_transaction_len = 10.0;
  cfg.num_items = 2000;
  cfg.num_patterns = 120;
  cfg.max_pattern_len = 8;
  cfg.weight_skew = 2.0;
  cfg.corruption_mean = 0.15;
  cfg.table_seed = 777;  // One hidden pattern table shared by every day:
  // the store sells the same products all week.
  cfg.seed = 1000 + static_cast<uint64_t>(day);  // Fresh transactions daily.
  return std::move(gogreen::data::GenerateQuest(cfg)).value();
}

}  // namespace

int main() {
  using gogreen::Timer;
  using gogreen::core::IncrementalSession;
  using gogreen::core::MiningPathName;

  constexpr double kSupportFraction = 0.01;
  constexpr size_t kDailyRows = 30000;

  // Day 0: bootstrap with the first batch and a full mine.
  IncrementalSession session(DayBatch(0, kDailyRows));

  // A non-recycling control session over the same data.
  gogreen::core::RecyclerOptions scratch_opts;
  scratch_opts.enable_recycling = false;
  IncrementalSession control(DayBatch(0, kDailyRows), scratch_opts);

  std::printf("%-5s %10s %12s | %12s %12s | %9s %8s\n", "day", "rows",
              "#patterns", "recycled", "scratch", "speedup", "path");
  for (int day = 0; day <= 6; ++day) {
    if (day > 0) {
      const auto batch = DayBatch(day, kDailyRows);
      session.AddBatch(batch);
      control.AddBatch(batch);
    }
    const uint64_t minsup = gogreen::fpm::AbsoluteSupport(
        kSupportFraction, session.db().NumTransactions());

    Timer t1;
    auto recycled = session.Mine(minsup);
    const double recycled_secs = t1.ElapsedSeconds();
    if (!recycled.ok()) return 1;

    Timer t2;
    auto scratch = control.Mine(minsup);
    const double scratch_secs = t2.ElapsedSeconds();
    if (!scratch.ok()) return 1;

    if (recycled->size() != scratch->size()) {
      std::fprintf(stderr, "MISMATCH on day %d\n", day);
      return 2;
    }
    std::printf("%-5d %10zu %12zu | %11.3fs %11.3fs | %8.1fx %8s\n", day,
                session.db().NumTransactions(), recycled->size(),
                recycled_secs, scratch_secs,
                recycled_secs > 0 ? scratch_secs / recycled_secs : 0.0,
                MiningPathName(session.last_stats().path));
  }

  // Week's end: retention policy deletes the oldest third of the log, and
  // the analyst drops the threshold. Both changes at once — still exact.
  const size_t before = session.db().NumTransactions();
  const size_t cutoff = before / 3;
  session.RemoveIf([cutoff](gogreen::fpm::Tid t, gogreen::fpm::ItemSpan) {
    return t < cutoff;
  });
  control.RemoveIf([cutoff](gogreen::fpm::Tid t, gogreen::fpm::ItemSpan) {
    return t < cutoff;
  });
  const uint64_t low_sup = gogreen::fpm::AbsoluteSupport(
      0.01, session.db().NumTransactions());

  Timer t1;
  auto recycled = session.Mine(low_sup);
  const double recycled_secs = t1.ElapsedSeconds();
  Timer t2;
  auto scratch = control.Mine(low_sup);
  const double scratch_secs = t2.ElapsedSeconds();
  if (!recycled.ok() || !scratch.ok()) return 1;
  std::printf("\nafter deleting %zu rows and halving the threshold:\n",
              cutoff);
  std::printf("  recycled %.3fs vs scratch %.3fs (%.1fx), %zu patterns, "
              "results %s\n",
              recycled_secs, scratch_secs,
              recycled_secs > 0 ? scratch_secs / recycled_secs : 0.0,
              recycled->size(),
              recycled->size() == scratch->size() ? "agree" : "DISAGREE");
  return 0;
}
