// Quickstart: the recycling workflow end to end on the paper's example
// database (Table 1). Mines at xi_old = 3, compresses the database with the
// discovered patterns (Table 2), then mines the compressed database at the
// relaxed xi_new = 2 — and shows that the result matches direct mining.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/compressed_miner.h"
#include "core/compressor.h"
#include "fpm/miner.h"
#include "fpm/transaction_db.h"

int main() {
  using namespace gogreen;  // NOLINT(build/namespaces) — example brevity.

  // The paper's Table 1 database; items a..i are encoded as 0..8.
  constexpr fpm::ItemId a = 0, b = 1, c = 2, d = 3, e = 4, f = 5, g = 6,
                        h = 7, i = 8;
  fpm::TransactionDb db;
  db.AddTransaction({a, c, d, e, f, g});  // tuple 100
  db.AddTransaction({b, c, d, f, g});     // tuple 200
  db.AddTransaction({c, e, f, g});        // tuple 300
  db.AddTransaction({a, c, e, i});        // tuple 400
  db.AddTransaction({a, e, h});           // tuple 500

  // Round 1: mine at xi_old = 3 with any substrate miner.
  auto miner = fpm::CreateMiner(fpm::MinerKind::kHMine);
  auto fp_old = miner->Mine(db, 3);
  if (!fp_old.ok()) {
    std::fprintf(stderr, "mine failed: %s\n",
                 fp_old.status().ToString().c_str());
    return 1;
  }
  std::printf("patterns at xi_old=3:\n%s", fp_old->ToString().c_str());

  // Phase 1: compress the database with the recycled patterns (MCP).
  core::CompressionStats stats;
  auto cdb = core::CompressDatabase(
      db, *fp_old,
      {core::CompressionStrategy::kMcp, core::MatcherKind::kAuto}, &stats);
  if (!cdb.ok()) return 1;
  std::printf("\ncompressed: %zu groups, ratio=%.2f\n", cdb->NumGroups(),
              stats.Ratio());
  for (core::GroupId g2 = 0; g2 < cdb->NumGroups(); ++g2) {
    const auto view = cdb->Group(g2);
    std::printf("  group %u: pattern size %zu, %llu tuples\n", g2,
                view.pattern.size(),
                static_cast<unsigned long long>(view.count));
  }

  // Phase 2: mine the compressed database at the relaxed xi_new = 2.
  auto recycler = core::CreateCompressedMiner(core::RecycleAlgo::kHMine);
  auto fp_new = recycler->MineCompressed(*cdb, 2);
  if (!fp_new.ok()) return 1;

  // Cross-check against direct mining.
  auto direct = fpm::CreateMiner(fpm::MinerKind::kFpGrowth)->Mine(db, 2);
  if (!direct.ok()) return 1;
  fpm::PatternSet lhs = std::move(fp_new).value();
  fpm::PatternSet rhs = std::move(direct).value();
  std::printf("\nxi_new=2: %zu patterns via recycling, %zu via direct "
              "mining -> %s\n",
              lhs.size(), rhs.size(),
              fpm::PatternSet::Equal(&lhs, &rhs) ? "identical" : "MISMATCH");
  return 0;
}
