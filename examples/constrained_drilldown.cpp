// Constrained mining scenario (Section 2's framing): an analyst mines a
// synthetic product-basket dataset under a price budget and length limits,
// comparing constraint *pushdown* (anti-monotone pruning during the search)
// against complete mining + filtering — and then recycles patterns across a
// constraint relaxation.
//
// Build & run:  ./build/examples/constrained_drilldown

#include <cstdio>

#include "core/constrained_mine.h"
#include "core/recycler.h"
#include "data/quest_gen.h"
#include "fpm/miner.h"
#include "util/timer.h"

int main() {
  using gogreen::Timer;
  using gogreen::core::ConstraintSet;

  // A basket dataset over 2000 products with synthetic prices: product id
  // modulo 50, in dollars (cheap staples get low ids in this fiction).
  gogreen::data::QuestConfig cfg;
  cfg.num_transactions = 80000;
  cfg.avg_transaction_len = 12.0;
  cfg.num_items = 2000;
  cfg.num_patterns = 150;
  cfg.max_pattern_len = 8;
  cfg.weight_skew = 2.0;
  cfg.corruption_mean = 0.25;
  cfg.seed = 42;
  auto db_result = gogreen::data::GenerateQuest(cfg);
  if (!db_result.ok()) return 1;
  const gogreen::fpm::TransactionDb db = std::move(db_result).value();
  std::vector<double> prices(cfg.num_items);
  for (size_t i = 0; i < prices.size(); ++i) {
    prices[i] = static_cast<double>(i % 50);
  }

  const uint64_t minsup =
      gogreen::fpm::AbsoluteSupport(0.01, db.NumTransactions());

  // Query: bundles under a $60 total price, at most 4 products.
  ConstraintSet constraints(minsup);
  constraints.Add(gogreen::core::MakeMaxSum(prices, 60.0));
  constraints.Add(gogreen::core::MakeMaxLength(4));
  std::printf("query: %s\n\n", constraints.Describe().c_str());

  // Path 1: complete mining + filter.
  Timer t1;
  auto complete = gogreen::fpm::CreateMiner(gogreen::fpm::MinerKind::kHMine)
                      ->Mine(db, minsup);
  if (!complete.ok()) return 1;
  const auto filtered = constraints.Filter(*complete);
  const double filter_secs = t1.ElapsedSeconds();

  // Path 2: pushdown — anti-monotone constraints prune the search.
  Timer t2;
  gogreen::fpm::MiningStats pushdown_stats;
  auto pushed = gogreen::core::MineConstrained(db, constraints,
                                               &pushdown_stats);
  if (!pushed.ok()) return 1;
  const double pushdown_secs = t2.ElapsedSeconds();

  std::printf("complete+filter: %6zu patterns in %.3fs (complete set %zu)\n",
              filtered.size(), filter_secs, complete->size());
  std::printf("pushdown:        %6zu patterns in %.3fs "
              "(%.1fx, %llu item occurrences scanned)\n",
              pushed->size(), pushdown_secs,
              pushdown_secs > 0 ? filter_secs / pushdown_secs : 0.0,
              static_cast<unsigned long long>(
                  pushdown_stats.items_scanned));
  if (pushed->size() != filtered.size()) {
    std::fprintf(stderr, "MISMATCH between pushdown and filter results\n");
    return 2;
  }

  // The iterative step: the analyst relaxes the budget and the support.
  // The session recycles the cached (support-complete) patterns.
  gogreen::core::RecyclingSession session(db);
  ConstraintSet round1(minsup);
  round1.Add(gogreen::core::MakeMaxSum(prices, 60.0));
  if (!session.Mine(round1).ok()) return 1;

  ConstraintSet round2(
      gogreen::fpm::AbsoluteSupport(0.004, db.NumTransactions()));
  round2.Add(gogreen::core::MakeMaxSum(prices, 120.0));
  Timer t3;
  auto relaxed = session.Mine(round2);
  if (!relaxed.ok()) return 1;
  std::printf("\nrelaxed budget+support via session: %zu patterns in %.3fs "
              "(path=%s, delta=%s)\n",
              relaxed->size(), t3.ElapsedSeconds(),
              gogreen::core::MiningPathName(session.last_stats().path),
              gogreen::core::ConstraintDeltaName(
                  session.last_stats().delta));
  return 0;
}
